package nn

import (
	"math/rand"
	"testing"
)

func TestCtxValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewRecurrentModel("m", 3, 2, 4, NewRNNCell("c", 4, 4, rng), rng)

	// nil ctx is zero-filled when the model expects context.
	p1, _ := m.Forward([]float64{1, 2, 3}, nil)
	p2, _ := m.Forward([]float64{1, 2, 3}, []float64{0, 0})
	if p1 != p2 {
		t.Fatal("nil ctx should behave like zero ctx")
	}
	// Non-zero ctx changes the prediction.
	p3, _ := m.Forward([]float64{1, 2, 3}, []float64{1, -1})
	if p3 == p1 {
		t.Fatal("ctx has no effect on the prediction")
	}

	// Wrong window or ctx length panics.
	for _, fn := range []func(){
		func() { m.Forward([]float64{1, 2}, nil) },
		func() { m.Forward([]float64{1, 2, 3}, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCtxFreeModelIgnoresCtx(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewRecurrentModel("m", 3, 0, 4, NewRNNCell("c", 4, 4, rng), rng)
	p1, _ := m.Forward([]float64{1, 2, 3}, nil)
	p2, _ := m.Forward([]float64{1, 2, 3}, []float64{9, 9, 9}) // ignored: CtxSize 0
	if p1 != p2 {
		t.Fatal("ctx-free model must ignore ctx")
	}
	if m.CtxSize() != 0 {
		t.Fatal("CtxSize wrong")
	}
}

func TestModelMetadata(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	models := []Model{
		NewRecurrentModel("rec", 5, 2, 4, NewGRUCell("c", 4, 6, rng), rng),
		NewAttentiveGRUModel("att", 5, 2, 4, 6, rng),
		NewTransformerModel("tf", 5, 2, 4, 8, rng),
	}
	for _, m := range models {
		if m.WindowSize() != 5 || m.CtxSize() != 2 {
			t.Errorf("%s: ws %d ctx %d", m.Name(), m.WindowSize(), m.CtxSize())
		}
		if NumParams(m.Params()) == 0 {
			t.Errorf("%s: no parameters", m.Name())
		}
	}
}

func TestParamsAreDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewAttentiveGRUModel("m", 4, 1, 4, 4, rng)
	seen := map[*Param]bool{}
	names := map[string]bool{}
	for _, p := range m.Params() {
		if seen[p] {
			t.Fatalf("parameter %s listed twice", p.Name)
		}
		if names[p.Name] {
			t.Fatalf("duplicate parameter name %s", p.Name)
		}
		seen[p] = true
		names[p.Name] = true
	}
}

func TestAttentionPermutationSensitivity(t *testing.T) {
	// Attention plus GRU must distinguish input order.
	rng := rand.New(rand.NewSource(5))
	m := NewAttentiveGRUModel("m", 4, 0, 6, 6, rng)
	p1, _ := m.Forward([]float64{0.1, 0.9, 0.2, 0.8}, nil)
	p2, _ := m.Forward([]float64{0.8, 0.2, 0.9, 0.1}, nil)
	if p1 == p2 {
		t.Fatal("model insensitive to input order")
	}
}
