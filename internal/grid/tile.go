package grid

import "fmt"

// TileIndex layers a coarse, cache-resident summed-volume table over a
// PrefixSum. The coarse table holds the fine table's values at every
// tile-aligned coordinate (multiples of the tile edge on all three axes),
// subsampled — never recomputed — so the two tables agree bit-for-bit
// wherever they overlap. A query whose six corner coordinates
// (x0, x1+1, y0, y1+1, t0, t1+1) are all tile-aligned is answered from the
// coarse table's eight corners using the exact inclusion–exclusion
// expression of PrefixSum.RangeSum; any other query falls through to the
// fine table. Either way the returned float64 is bit-identical to
// PrefixSum.RangeSum on the same query.
//
// The win is locality, not asymptotics: both paths are O(1), but the
// coarse table for a DefaultTile-tiled grid is tile³ (512×) smaller than
// the fine one, so aligned block lookups — the shape the serving daemon's
// aggregate endpoints and the evaluation sweeps issue in bulk — stay in
// cache instead of striding across the full summed-volume table.
type TileIndex struct {
	fine *PrefixSum
	tile int
	// coarse has ncx x ncy x nct entries, index (t*ncy+y)*ncx+x, where
	// coarse[x][y][t] == fine.cum at (x*tile, y*tile, t*tile).
	ncx, ncy, nct int
	coarse        []float64
}

// DefaultTile is the tile edge used by NewTileIndex. 8 keeps the coarse
// table 512× smaller than the fine one while still catching the
// block-aligned query shapes the daemon serves.
const DefaultTile = 8

// NewTileIndex builds the summed-volume table for m and the DefaultTile
// coarse mirror over it.
func NewTileIndex(m *Matrix) *TileIndex {
	return NewTileIndexOver(NewPrefixSum(m), DefaultTile)
}

// NewTileIndexOver wraps an existing PrefixSum with a coarse mirror of the
// given tile edge. The fine table is shared, not copied.
func NewTileIndexOver(p *PrefixSum, tile int) *TileIndex {
	if tile < 1 {
		panic(fmt.Sprintf("grid: non-positive tile edge %d", tile))
	}
	ti := &TileIndex{
		fine: p,
		tile: tile,
		ncx:  p.cx/tile + 1,
		ncy:  p.cy/tile + 1,
		nct:  p.ct/tile + 1,
	}
	ti.coarse = make([]float64, ti.ncx*ti.ncy*ti.nct)
	sx, sy := p.cx+1, p.cy+1
	for tc := 0; tc < ti.nct; tc++ {
		for yc := 0; yc < ti.ncy; yc++ {
			for xc := 0; xc < ti.ncx; xc++ {
				// Copy, never recompute: bit-identity with the fine table
				// is the index's core invariant.
				v := p.cum[((tc*tile)*sy+yc*tile)*sx+xc*tile]
				ti.coarse[(tc*ti.ncy+yc)*ti.ncx+xc] = v
			}
		}
	}
	return ti
}

// Dims returns the dimensions of the indexed matrix.
func (ti *TileIndex) Dims() (cx, cy, ct int) { return ti.fine.Dims() }

// Tile returns the coarse table's tile edge.
func (ti *TileIndex) Tile() int { return ti.tile }

// Fine returns the underlying full-resolution summed-volume table.
func (ti *TileIndex) Fine() *PrefixSum { return ti.fine }

// RangeSum answers the inclusive-bounds query in O(1), from the coarse
// table when the query is tile-aligned and from the fine table otherwise.
// The result is bit-identical to ti.Fine().RangeSum(q) in both cases.
func (ti *TileIndex) RangeSum(q Query) float64 {
	x0, x1 := q.X0, q.X1+1
	y0, y1 := q.Y0, q.Y1+1
	t0, t1 := q.T0, q.T1+1
	e := ti.tile
	if x0%e|x1%e|y0%e|y1%e|t0%e|t1%e != 0 {
		return ti.fine.RangeSum(q)
	}
	if !q.ValidIn(ti.fine.cx, ti.fine.cy, ti.fine.ct) {
		panic(fmt.Sprintf("grid: query %+v outside %dx%dx%d", q, ti.fine.cx, ti.fine.cy, ti.fine.ct))
	}
	ncx, ncy := ti.ncx, ti.ncy
	at := func(x, y, t int) float64 { return ti.coarse[(t*ncy+y)*ncx+x] }
	x0, x1 = x0/e, x1/e
	y0, y1 = y0/e, y1/e
	t0, t1 = t0/e, t1/e
	// Same corner expression, in the same order, as PrefixSum.RangeSum:
	// the operands are copies of the fine table's values, so the float
	// arithmetic — and therefore the result — is identical bit for bit.
	return at(x1, y1, t1) - at(x0, y1, t1) - at(x1, y0, t1) - at(x1, y1, t0) +
		at(x0, y0, t1) + at(x0, y1, t0) + at(x1, y0, t0) - at(x0, y0, t0)
}
