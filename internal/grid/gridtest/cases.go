// Package gridtest holds the shared range-query edge-case table. The same
// cases drive the grid.Query clip/validate unit tests, the single-query
// evaluation tests in internal/query, and the request-validation tests of
// the serving daemon, so all three layers agree on exactly which queries
// are strictly valid, which are salvageable by canonicalize+clip, and
// which must be refused.
package gridtest

import "repro/internal/grid"

// Case is one edge-case query against a Cx x Cy x Ct box.
type Case struct {
	Name string
	In   grid.Query
	// StrictOK: In lies inside the box as-is (server default semantics —
	// anything else is a 400).
	StrictOK bool
	// ClipOK: In survives Canonicalize followed by Clip (server clip=1
	// semantics). When false the intersection is empty and even lenient
	// handling must refuse the query.
	ClipOK bool
	// Clipped is the canonicalized-and-clipped query; meaningful only
	// when ClipOK.
	Clipped grid.Query
}

// Cases returns the edge-case table for a cx x cy x ct box. Dimensions
// must each be at least 4 so boundary and interior cases stay distinct.
func Cases(cx, cy, ct int) []Case {
	full := grid.Query{X0: 0, X1: cx - 1, Y0: 0, Y1: cy - 1, T0: 0, T1: ct - 1}
	return []Case{
		{
			Name:     "full-box",
			In:       full,
			StrictOK: true, ClipOK: true, Clipped: full,
		},
		{
			Name:     "single-cell-origin",
			In:       grid.Query{},
			StrictOK: true, ClipOK: true, Clipped: grid.Query{},
		},
		{
			Name:     "single-cell-far-corner",
			In:       grid.Query{X0: cx - 1, X1: cx - 1, Y0: cy - 1, Y1: cy - 1, T0: ct - 1, T1: ct - 1},
			StrictOK: true, ClipOK: true,
			Clipped: grid.Query{X0: cx - 1, X1: cx - 1, Y0: cy - 1, Y1: cy - 1, T0: ct - 1, T1: ct - 1},
		},
		{
			Name:     "interior",
			In:       grid.Query{X0: 1, X1: 2, Y0: 1, Y1: 2, T0: 1, T1: 2},
			StrictOK: true, ClipOK: true,
			Clipped: grid.Query{X0: 1, X1: 2, Y0: 1, Y1: 2, T0: 1, T1: 2},
		},
		{
			Name:     "inverted-x",
			In:       grid.Query{X0: 2, X1: 1, Y0: 0, Y1: 1, T0: 0, T1: 1},
			StrictOK: false, ClipOK: true,
			Clipped: grid.Query{X0: 1, X1: 2, Y0: 0, Y1: 1, T0: 0, T1: 1},
		},
		{
			Name:     "inverted-all-axes",
			In:       grid.Query{X0: cx - 1, X1: 0, Y0: cy - 1, Y1: 0, T0: ct - 1, T1: 0},
			StrictOK: false, ClipOK: true, Clipped: full,
		},
		{
			Name:     "clipped-at-upper-bounds",
			In:       grid.Query{X0: cx - 2, X1: cx + 5, Y0: cy - 2, Y1: cy + 5, T0: ct - 2, T1: ct + 5},
			StrictOK: false, ClipOK: true,
			Clipped: grid.Query{X0: cx - 2, X1: cx - 1, Y0: cy - 2, Y1: cy - 1, T0: ct - 2, T1: ct - 1},
		},
		{
			Name:     "clipped-at-lower-bounds",
			In:       grid.Query{X0: -3, X1: 1, Y0: -3, Y1: 1, T0: -3, T1: 1},
			StrictOK: false, ClipOK: true,
			Clipped: grid.Query{X0: 0, X1: 1, Y0: 0, Y1: 1, T0: 0, T1: 1},
		},
		{
			Name:     "superset-of-box",
			In:       grid.Query{X0: -10, X1: cx + 10, Y0: -10, Y1: cy + 10, T0: -10, T1: ct + 10},
			StrictOK: false, ClipOK: true, Clipped: full,
		},
		{
			Name:     "zero-volume-above-x",
			In:       grid.Query{X0: cx, X1: cx + 3, Y0: 0, Y1: 1, T0: 0, T1: 1},
			StrictOK: false, ClipOK: false,
		},
		{
			Name:     "zero-volume-below-t",
			In:       grid.Query{X0: 0, X1: 1, Y0: 0, Y1: 1, T0: -5, T1: -1},
			StrictOK: false, ClipOK: false,
		},
		{
			Name: "zero-volume-inverted-outside",
			// Canonicalizes to [cy, cy+2] in y: still past the edge.
			In:       grid.Query{X0: 0, X1: 1, Y0: cy + 2, Y1: cy, T0: 0, T1: 1},
			StrictOK: false, ClipOK: false,
		},
	}
}
