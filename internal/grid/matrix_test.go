package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/timeseries"
)

func sequentialMatrix(cx, cy, ct int) *Matrix {
	m := NewMatrix(cx, cy, ct)
	v := 0.0
	for t := 0; t < ct; t++ {
		for y := 0; y < cy; y++ {
			for x := 0; x < cx; x++ {
				m.Set(x, y, t, v)
				v++
			}
		}
	}
	return m
}

func TestNewMatrixValidation(t *testing.T) {
	for _, dims := range [][3]int{{0, 1, 1}, {1, -1, 1}, {1, 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for dims %v", dims)
				}
			}()
			NewMatrix(dims[0], dims[1], dims[2])
		}()
	}
}

func TestAtSetAdd(t *testing.T) {
	m := NewMatrix(3, 2, 4)
	m.Set(2, 1, 3, 5)
	if m.At(2, 1, 3) != 5 {
		t.Fatal("Set/At broken")
	}
	m.AddAt(2, 1, 3, 2)
	if m.At(2, 1, 3) != 7 {
		t.Fatal("AddAt broken")
	}
	if m.Len() != 24 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestIndexPanics(t *testing.T) {
	m := NewMatrix(2, 2, 2)
	for _, c := range [][3]int{{2, 0, 0}, {0, 2, 0}, {0, 0, 2}, {-1, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %v", c)
				}
			}()
			m.At(c[0], c[1], c[2])
		}()
	}
}

func TestFromDataset(t *testing.T) {
	d := &timeseries.Dataset{
		Cx: 2, Cy: 2,
		Series: []*timeseries.Series{
			{Location: timeseries.Location{X: 0, Y: 0}, Values: []float64{1, 2}},
			{Location: timeseries.Location{X: 0, Y: 0}, Values: []float64{3, 4}}, // same cell: summed
			{Location: timeseries.Location{X: 1, Y: 1}, Values: []float64{5, 6}},
		},
	}
	m := FromDataset(d)
	if m.At(0, 0, 0) != 4 || m.At(0, 0, 1) != 6 {
		t.Fatalf("aggregation wrong: %v %v", m.At(0, 0, 0), m.At(0, 0, 1))
	}
	if m.At(1, 1, 1) != 6 {
		t.Fatal("placement wrong")
	}
	if m.At(1, 0, 0) != 0 {
		t.Fatal("empty cell should be 0")
	}
}

func TestPillarRoundTrip(t *testing.T) {
	m := sequentialMatrix(3, 3, 5)
	p := m.Pillar(1, 2)
	if len(p) != 5 {
		t.Fatalf("pillar length %d", len(p))
	}
	for tt := 0; tt < 5; tt++ {
		if p[tt] != m.At(1, 2, tt) {
			t.Fatal("pillar mismatch")
		}
	}
	m2 := NewMatrix(3, 3, 5)
	m2.SetPillar(1, 2, p)
	for tt := 0; tt < 5; tt++ {
		if m2.At(1, 2, tt) != p[tt] {
			t.Fatal("SetPillar mismatch")
		}
	}
}

func TestTimeSliceAndTotal(t *testing.T) {
	m := sequentialMatrix(2, 2, 2)
	s0 := m.TimeSlice(0)
	if len(s0) != 4 || s0[0] != 0 || s0[3] != 3 {
		t.Fatalf("TimeSlice = %v", s0)
	}
	if m.Total() != 28 { // 0+..+7
		t.Fatalf("Total = %v", m.Total())
	}
	if m.Max() != 7 {
		t.Fatalf("Max = %v", m.Max())
	}
	m.Scale(2)
	if m.Total() != 56 {
		t.Fatalf("Scale broken: %v", m.Total())
	}
}

func TestCloneIndependence(t *testing.T) {
	m := sequentialMatrix(2, 2, 2)
	c := m.Clone()
	c.Set(0, 0, 0, 100)
	if m.At(0, 0, 0) == 100 {
		t.Fatal("Clone shares storage")
	}
}

func TestQueryValidAndVolume(t *testing.T) {
	m := NewMatrix(4, 4, 4)
	q := Query{X0: 1, X1: 2, Y0: 0, Y1: 3, T0: 2, T1: 2}
	if !q.Valid(m) {
		t.Fatal("valid query rejected")
	}
	if q.Volume() != 2*4*1 {
		t.Fatalf("Volume = %d", q.Volume())
	}
	bad := []Query{
		{X0: -1, X1: 0, Y1: 0, T1: 0},
		{X0: 0, X1: 4, Y1: 0, T1: 0},
		{X0: 1, X1: 0, Y1: 0, T1: 0},
		{Y0: 0, Y1: 4, X1: 0, T1: 0},
		{T0: 3, T1: 2, X1: 0, Y1: 0},
	}
	for i, b := range bad {
		if b.Valid(m) {
			t.Errorf("invalid query %d accepted: %+v", i, b)
		}
	}
}

func TestRangeSumHandComputed(t *testing.T) {
	m := sequentialMatrix(2, 2, 2) // values 0..7
	full := Query{X0: 0, X1: 1, Y0: 0, Y1: 1, T0: 0, T1: 1}
	if m.RangeSum(full) != 28 {
		t.Fatalf("full sum = %v", m.RangeSum(full))
	}
	one := Query{X0: 1, X1: 1, Y0: 1, Y1: 1, T0: 1, T1: 1}
	if m.RangeSum(one) != 7 {
		t.Fatalf("single cell = %v", m.RangeSum(one))
	}
}

// Property: prefix-sum answers match direct accumulation on random
// matrices and random queries.
func TestPrefixSumMatchesDirectProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cx, cy, ct := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewMatrix(cx, cy, ct)
		for i := range m.data {
			m.data[i] = rng.NormFloat64()
		}
		ps := NewPrefixSum(m)
		for k := 0; k < 20; k++ {
			q := randomQuery(rng, cx, cy, ct)
			if math.Abs(ps.RangeSum(q)-m.RangeSum(q)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func randomQuery(rng *rand.Rand, cx, cy, ct int) Query {
	span := func(n int) (int, int) {
		a, b := rng.Intn(n), rng.Intn(n)
		if a > b {
			a, b = b, a
		}
		return a, b
	}
	var q Query
	q.X0, q.X1 = span(cx)
	q.Y0, q.Y1 = span(cy)
	q.T0, q.T1 = span(ct)
	return q
}

func TestPrefixSumPanicsOutOfRange(t *testing.T) {
	m := NewMatrix(2, 2, 2)
	ps := NewPrefixSum(m)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ps.RangeSum(Query{X0: 0, X1: 2, Y1: 0, T1: 0})
}

// Property: matrix total equals the sum of every household reading.
func TestFromDatasetPreservesMassProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cx, cy := 1+rng.Intn(6), 1+rng.Intn(6)
		n, T := 1+rng.Intn(20), 1+rng.Intn(15)
		d := &timeseries.Dataset{Cx: cx, Cy: cy}
		var want float64
		for i := 0; i < n; i++ {
			vals := make([]float64, T)
			for t := range vals {
				vals[t] = rng.Float64() * 10
				want += vals[t]
			}
			d.Series = append(d.Series, &timeseries.Series{
				Location: timeseries.Location{X: rng.Intn(cx), Y: rng.Intn(cy)},
				Values:   vals,
			})
		}
		m := FromDataset(d)
		return math.Abs(m.Total()-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
