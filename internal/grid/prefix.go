package grid

import "fmt"

// PrefixSum is a 3-D summed-volume table over a Matrix: any range query is
// answered in O(1) by inclusion–exclusion over its eight corners. Building
// it is O(Cx·Cy·Ct).
type PrefixSum struct {
	cx, cy, ct int
	// cum has dimensions (cx+1) x (cy+1) x (ct+1), index (t*(cy+1)+y)*(cx+1)+x,
	// where cum[x][y][t] = sum of m over [0,x) x [0,y) x [0,t).
	cum []float64
}

// NewPrefixSum builds the summed-volume table for m.
func NewPrefixSum(m *Matrix) *PrefixSum {
	p := &PrefixSum{cx: m.Cx, cy: m.Cy, ct: m.Ct}
	sx, sy := m.Cx+1, m.Cy+1
	p.cum = make([]float64, sx*sy*(m.Ct+1))
	at := func(x, y, t int) float64 { return p.cum[(t*sy+y)*sx+x] }
	for t := 1; t <= m.Ct; t++ {
		for y := 1; y <= m.Cy; y++ {
			for x := 1; x <= m.Cx; x++ {
				v := m.At(x-1, y-1, t-1) +
					at(x-1, y, t) + at(x, y-1, t) + at(x, y, t-1) -
					at(x-1, y-1, t) - at(x-1, y, t-1) - at(x, y-1, t-1) +
					at(x-1, y-1, t-1)
				p.cum[(t*sy+y)*sx+x] = v
			}
		}
	}
	return p
}

// Dims returns the dimensions of the indexed matrix.
func (p *PrefixSum) Dims() (cx, cy, ct int) { return p.cx, p.cy, p.ct }

// RangeSum answers the inclusive-bounds query in O(1).
func (p *PrefixSum) RangeSum(q Query) float64 {
	if !q.ValidIn(p.cx, p.cy, p.ct) {
		panic(fmt.Sprintf("grid: query %+v outside %dx%dx%d", q, p.cx, p.cy, p.ct))
	}
	sx, sy := p.cx+1, p.cy+1
	at := func(x, y, t int) float64 { return p.cum[(t*sy+y)*sx+x] }
	x0, x1 := q.X0, q.X1+1
	y0, y1 := q.Y0, q.Y1+1
	t0, t1 := q.T0, q.T1+1
	return at(x1, y1, t1) - at(x0, y1, t1) - at(x1, y0, t1) - at(x1, y1, t0) +
		at(x0, y0, t1) + at(x0, y1, t0) + at(x1, y0, t0) - at(x0, y0, t0)
}
