// Package grid implements the 3-D consumption matrix of Section 3.1
// (spatial Cx x Cy grid by Ct time intervals), range queries over it
// (Definition 3), and the prefix-sum index that answers them in O(1).
package grid

import (
	"fmt"

	"repro/internal/timeseries"
)

// Matrix is the consumption matrix C: element (x, y, t) holds the total
// consumption of households in spatial cell (x, y) during time interval t.
type Matrix struct {
	Cx, Cy, Ct int
	data       []float64 // index (t*Cy + y)*Cx + x
}

// NewMatrix returns a zeroed Cx x Cy x Ct matrix.
func NewMatrix(cx, cy, ct int) *Matrix {
	if cx <= 0 || cy <= 0 || ct <= 0 {
		panic(fmt.Sprintf("grid: invalid matrix dimensions %dx%dx%d", cx, cy, ct))
	}
	return &Matrix{Cx: cx, Cy: cy, Ct: ct, data: make([]float64, cx*cy*ct)}
}

// FromDataset accumulates every household's readings into its grid cell,
// producing the consumption matrix C_cons of the dataset.
func FromDataset(d *timeseries.Dataset) *Matrix {
	if err := d.Validate(); err != nil {
		panic("grid: " + err.Error())
	}
	m := NewMatrix(d.Cx, d.Cy, d.T())
	for _, s := range d.Series {
		for t, v := range s.Values {
			m.AddAt(s.Location.X, s.Location.Y, t, v)
		}
	}
	return m
}

func (m *Matrix) idx(x, y, t int) int {
	if x < 0 || x >= m.Cx || y < 0 || y >= m.Cy || t < 0 || t >= m.Ct {
		panic(fmt.Sprintf("grid: index (%d,%d,%d) out of range %dx%dx%d", x, y, t, m.Cx, m.Cy, m.Ct))
	}
	return (t*m.Cy+y)*m.Cx + x
}

// At returns element (x, y, t).
func (m *Matrix) At(x, y, t int) float64 { return m.data[m.idx(x, y, t)] }

// Set assigns element (x, y, t).
func (m *Matrix) Set(x, y, t int, v float64) { m.data[m.idx(x, y, t)] = v }

// AddAt accumulates v into element (x, y, t).
func (m *Matrix) AddAt(x, y, t int, v float64) { m.data[m.idx(x, y, t)] += v }

// Len returns the total number of cells.
func (m *Matrix) Len() int { return len(m.data) }

// Data exposes the backing slice for bulk read-only traversal. Callers
// must not grow it; index layout is (t*Cy + y)*Cx + x.
func (m *Matrix) Data() []float64 { return m.data }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Cx, m.Cy, m.Ct)
	copy(out.data, m.data)
	return out
}

// Pillar returns the time series of cell (x, y) — all Ct values sharing
// the same spatial coordinates — as a fresh slice.
func (m *Matrix) Pillar(x, y int) []float64 {
	out := make([]float64, m.Ct)
	for t := 0; t < m.Ct; t++ {
		out[t] = m.At(x, y, t)
	}
	return out
}

// SetPillar writes a length-Ct series into cell (x, y).
func (m *Matrix) SetPillar(x, y int, values []float64) {
	if len(values) != m.Ct {
		panic(fmt.Sprintf("grid: SetPillar length %d, want %d", len(values), m.Ct))
	}
	for t, v := range values {
		m.Set(x, y, t, v)
	}
}

// TimeSlice returns the Cx x Cy spatial slice at time t as a fresh
// row-major (y-major) slice.
func (m *Matrix) TimeSlice(t int) []float64 {
	out := make([]float64, m.Cx*m.Cy)
	copy(out, m.data[t*m.Cx*m.Cy:(t+1)*m.Cx*m.Cy])
	return out
}

// Total returns the sum of all cells.
func (m *Matrix) Total() float64 {
	var s float64
	for _, v := range m.data {
		s += v
	}
	return s
}

// Max returns the largest cell value (0 for an all-zero matrix is fine:
// consumption is non-negative).
func (m *Matrix) Max() float64 {
	var best float64
	for _, v := range m.data {
		if v > best {
			best = v
		}
	}
	return best
}

// Scale multiplies every element by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// Query is a 3-orthotope range query (Definition 3) with inclusive bounds
// in all three dimensions. The JSON tags define the wire shape the
// serving daemon exposes, so they are part of the public API.
type Query struct {
	X0 int `json:"x0"` // 0 <= X0 <= X1 < Cx
	X1 int `json:"x1"`
	Y0 int `json:"y0"`
	Y1 int `json:"y1"`
	T0 int `json:"t0"`
	T1 int `json:"t1"`
}

// Valid reports whether the query lies within the matrix bounds.
func (q Query) Valid(m *Matrix) bool { return q.ValidIn(m.Cx, m.Cy, m.Ct) }

// Volume returns the number of cells the query covers.
func (q Query) Volume() int {
	return (q.X1 - q.X0 + 1) * (q.Y1 - q.Y0 + 1) * (q.T1 - q.T0 + 1)
}

// ValidIn reports whether the query lies within a cx x cy x ct box — the
// matrix-free form of Valid, shared by callers that only know dimensions
// (e.g. a prefix-sum index or a request validator).
func (q Query) ValidIn(cx, cy, ct int) bool {
	return q.X0 >= 0 && q.X0 <= q.X1 && q.X1 < cx &&
		q.Y0 >= 0 && q.Y0 <= q.Y1 && q.Y1 < cy &&
		q.T0 >= 0 && q.T0 <= q.T1 && q.T1 < ct
}

// Canonicalize returns the query with each axis's bounds ordered
// (X0 <= X1, Y0 <= Y1, T0 <= T1). It does not touch out-of-box bounds;
// combine with Clip for full normalisation.
func (q Query) Canonicalize() Query {
	if q.X0 > q.X1 {
		q.X0, q.X1 = q.X1, q.X0
	}
	if q.Y0 > q.Y1 {
		q.Y0, q.Y1 = q.Y1, q.Y0
	}
	if q.T0 > q.T1 {
		q.T0, q.T1 = q.T1, q.T0
	}
	return q
}

// Clip intersects the query with the box [0,cx) x [0,cy) x [0,ct) and
// reports whether any cells remain. Inverted axes are treated as empty,
// not reordered — Canonicalize first if client bound order is untrusted.
// When ok is false the returned query is meaningless.
func (q Query) Clip(cx, cy, ct int) (clipped Query, ok bool) {
	if q.X0 < 0 {
		q.X0 = 0
	}
	if q.Y0 < 0 {
		q.Y0 = 0
	}
	if q.T0 < 0 {
		q.T0 = 0
	}
	if q.X1 >= cx {
		q.X1 = cx - 1
	}
	if q.Y1 >= cy {
		q.Y1 = cy - 1
	}
	if q.T1 >= ct {
		q.T1 = ct - 1
	}
	return q, q.X0 <= q.X1 && q.Y0 <= q.Y1 && q.T0 <= q.T1
}

// RangeSum answers the query by direct accumulation. Use a PrefixSum index
// for repeated queries.
func (m *Matrix) RangeSum(q Query) float64 {
	if !q.Valid(m) {
		panic(fmt.Sprintf("grid: query %+v outside %dx%dx%d", q, m.Cx, m.Cy, m.Ct))
	}
	var s float64
	for t := q.T0; t <= q.T1; t++ {
		for y := q.Y0; y <= q.Y1; y++ {
			base := (t*m.Cy + y) * m.Cx
			for x := q.X0; x <= q.X1; x++ {
				s += m.data[base+x]
			}
		}
	}
	return s
}
