package grid

import (
	"math/rand"
	"testing"
)

func randFilled(cx, cy, ct int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(cx, cy, ct)
	d := m.Data()
	for i := range d {
		// Mix magnitudes so cancellation differences between computation
		// orders would actually show up as bit differences.
		d[i] = rng.NormFloat64() * float64(int64(1)<<(uint(i)%20))
	}
	return m
}

// TestTileIndexBitIdenticalExhaustive compares TileIndex.RangeSum against
// PrefixSum.RangeSum for EVERY valid query over a small box, for several
// tile edges including degenerate ones. Equality is exact (==): the tiled
// index must not change a single bit of any answer.
func TestTileIndexBitIdenticalExhaustive(t *testing.T) {
	const cx, cy, ct = 9, 8, 6 // 9 exercises a ragged final tile at edge 4 and 8
	m := randFilled(cx, cy, ct, 11)
	p := NewPrefixSum(m)
	for _, tile := range []int{1, 2, 3, 4, 8, 16} {
		ti := NewTileIndexOver(p, tile)
		for x0 := 0; x0 < cx; x0++ {
			for x1 := x0; x1 < cx; x1++ {
				for y0 := 0; y0 < cy; y0++ {
					for y1 := y0; y1 < cy; y1++ {
						for t0 := 0; t0 < ct; t0++ {
							for t1 := t0; t1 < ct; t1++ {
								q := Query{X0: x0, X1: x1, Y0: y0, Y1: y1, T0: t0, T1: t1}
								if got, want := ti.RangeSum(q), p.RangeSum(q); got != want {
									t.Fatalf("tile=%d query %+v: tiled %x, fine %x", tile, q, got, want)
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestTileIndexCoarseMirrorsFine checks the structural invariant directly:
// every coarse entry is byte-for-byte the fine table's value at the
// corresponding tile-aligned coordinate.
func TestTileIndexCoarseMirrorsFine(t *testing.T) {
	const cx, cy, ct = 16, 12, 24
	m := randFilled(cx, cy, ct, 23)
	p := NewPrefixSum(m)
	ti := NewTileIndexOver(p, 4)
	sx, sy := cx+1, cy+1
	for tc := 0; tc < ti.nct; tc++ {
		for yc := 0; yc < ti.ncy; yc++ {
			for xc := 0; xc < ti.ncx; xc++ {
				got := ti.coarse[(tc*ti.ncy+yc)*ti.ncx+xc]
				want := p.cum[((tc*4)*sy+yc*4)*sx+xc*4]
				if got != want {
					t.Fatalf("coarse[%d,%d,%d] = %x, fine = %x", xc, yc, tc, got, want)
				}
			}
		}
	}
}

// TestTileIndexAlignedUsesCoarse pins that aligned queries actually take
// the coarse path (the perf contract, not just the value contract): a
// poisoned fine table must not change aligned answers.
func TestTileIndexAlignedUsesCoarse(t *testing.T) {
	const cx, cy, ct = 16, 16, 16
	m := randFilled(cx, cy, ct, 31)
	ti := NewTileIndex(m) // DefaultTile = 8
	aligned := Query{X0: 0, X1: 7, Y0: 8, Y1: 15, T0: 0, T1: 15}
	want := ti.RangeSum(aligned)
	for i := range ti.fine.cum {
		ti.fine.cum[i] = -1e300 // poison: any fine lookup now corrupts the sum
	}
	if got := ti.RangeSum(aligned); got != want {
		t.Fatalf("aligned query read the fine table: %g != %g", got, want)
	}
}

// TestTileIndexRejectsInvalid mirrors PrefixSum.RangeSum's contract: out
// of bounds queries panic on both the aligned and unaligned paths.
func TestTileIndexRejectsInvalid(t *testing.T) {
	m := randFilled(8, 8, 8, 5)
	ti := NewTileIndex(m)
	for name, q := range map[string]Query{
		"aligned-oob":   {X0: 0, X1: 15, Y0: 0, Y1: 7, T0: 0, T1: 7},
		"unaligned-oob": {X0: 3, X1: 9, Y0: 0, Y1: 7, T0: 0, T1: 7},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			ti.RangeSum(q)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewTileIndexOver accepted tile 0")
			}
		}()
		NewTileIndexOver(NewPrefixSum(m), 0)
	}()
}

// TestTileIndexAccessors covers the trivial read surface.
func TestTileIndexAccessors(t *testing.T) {
	m := randFilled(8, 6, 10, 7)
	p := NewPrefixSum(m)
	ti := NewTileIndexOver(p, 4)
	if cx, cy, ct := ti.Dims(); cx != 8 || cy != 6 || ct != 10 {
		t.Errorf("Dims = %d,%d,%d", cx, cy, ct)
	}
	if ti.Tile() != 4 {
		t.Errorf("Tile = %d", ti.Tile())
	}
	if ti.Fine() != p {
		t.Error("Fine does not return the wrapped table")
	}
}
