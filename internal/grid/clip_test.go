package grid_test

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/grid/gridtest"
)

const (
	tcx = 8
	tcy = 6
	tct = 10
)

// TestQueryEdgeCases runs the shared edge-case table against the
// grid-level validators: ValidIn must match the strict verdict and
// Canonicalize+Clip must match the lenient one.
func TestQueryEdgeCases(t *testing.T) {
	for _, c := range gridtest.Cases(tcx, tcy, tct) {
		t.Run(c.Name, func(t *testing.T) {
			if got := c.In.ValidIn(tcx, tcy, tct); got != c.StrictOK {
				t.Errorf("ValidIn = %v, want %v", got, c.StrictOK)
			}
			clipped, ok := c.In.Canonicalize().Clip(tcx, tcy, tct)
			if ok != c.ClipOK {
				t.Fatalf("Clip ok = %v, want %v", ok, c.ClipOK)
			}
			if !ok {
				return
			}
			if clipped != c.Clipped {
				t.Errorf("Clipped = %+v, want %+v", clipped, c.Clipped)
			}
			if !clipped.ValidIn(tcx, tcy, tct) {
				t.Errorf("clipped query %+v is not strictly valid", clipped)
			}
		})
	}
}

// TestClipAgreesWithRangeSum: a clipped query must answer identically to
// summing the original query's in-box cells by brute force.
func TestClipAgreesWithRangeSum(t *testing.T) {
	m := grid.NewMatrix(tcx, tcy, tct)
	for t0 := 0; t0 < tct; t0++ {
		for y := 0; y < tcy; y++ {
			for x := 0; x < tcx; x++ {
				m.Set(x, y, t0, float64(1+x+10*y+100*t0))
			}
		}
	}
	p := grid.NewPrefixSum(m)
	for _, c := range gridtest.Cases(tcx, tcy, tct) {
		if !c.ClipOK {
			continue
		}
		t.Run(c.Name, func(t *testing.T) {
			want := m.RangeSum(c.Clipped)
			clipped, _ := c.In.Canonicalize().Clip(tcx, tcy, tct)
			if got := p.RangeSum(clipped); got != want {
				t.Errorf("prefix sum %g, want %g", got, want)
			}
		})
	}
}

// TestPrefixSumDims: the index must report the dimensions of the matrix
// it was built from.
func TestPrefixSumDims(t *testing.T) {
	p := grid.NewPrefixSum(grid.NewMatrix(3, 4, 5))
	cx, cy, ct := p.Dims()
	if cx != 3 || cy != 4 || ct != 5 {
		t.Fatalf("Dims = %d,%d,%d, want 3,4,5", cx, cy, ct)
	}
}
