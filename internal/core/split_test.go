package core

import "testing"

func TestSuggestBudgetSplitInRange(t *testing.T) {
	cfg := tinyConfig()
	f, err := SuggestBudgetSplit(cfg, 16, 16, 48)
	if err != nil {
		t.Fatal(err)
	}
	if f < 0.1 || f > 0.9 {
		t.Fatalf("split %v outside [0.1, 0.9]", f)
	}
}

func TestSuggestBudgetSplitRespondsToStructure(t *testing.T) {
	base := tinyConfig()
	f0, err := SuggestBudgetSplit(base, 16, 16, 48)
	if err != nil {
		t.Fatal(err)
	}
	// Deeper trees add fine, high-sensitivity levels → the pattern phase
	// needs a larger share.
	deep := base
	deep.Depth = 4
	deep.TTrain = 20
	f1, err := SuggestBudgetSplit(deep, 16, 16, 48)
	if err != nil {
		t.Fatal(err)
	}
	if f1 < f0 {
		t.Fatalf("deeper tree should not lower the pattern share: %v -> %v", f0, f1)
	}
	// More quantization buckets mean more noised partition aggregates →
	// sanitisation needs a larger share, so the pattern share cannot rise.
	fine := base
	fine.QuantLevels = 64
	f2, err := SuggestBudgetSplit(fine, 16, 16, 48)
	if err != nil {
		t.Fatal(err)
	}
	if f2 > f0+1e-9 {
		t.Fatalf("more buckets should not raise the pattern share: %v -> %v", f0, f2)
	}
}

func TestSuggestBudgetSplitValidation(t *testing.T) {
	cfg := tinyConfig()
	if _, err := SuggestBudgetSplit(cfg, 0, 16, 48); err == nil {
		t.Fatal("expected geometry error")
	}
	bad := cfg
	bad.EpsPattern = 0
	if _, err := SuggestBudgetSplit(bad, 16, 16, 48); err == nil {
		t.Fatal("expected config error")
	}
}
