package core

import (
	"fmt"
	"math/rand"

	"repro/internal/dp"
	"repro/internal/grid"
	"repro/internal/timeseries"
)

// Result is the output of one STPT run.
type Result struct {
	// Sanitized is C_sanitized: the ε_tot-DP release of the consumption
	// matrix over the horizon [TTrain, T), in original (kWh) units.
	Sanitized *grid.Matrix
	// Truth is the non-private consumption matrix over the same horizon,
	// retained for utility evaluation only (never released).
	Truth *grid.Matrix
	// Pattern is C_pattern, the normalised private estimates.
	Pattern *PatternResult
	// PatternMAE/PatternRMSE compare C_pattern against the true
	// normalised horizon (the Figure 8(a,b,e,f) metrics).
	PatternMAE, PatternRMSE float64
	// Partitions is the number of non-empty quantization buckets.
	Partitions int
	// Accountant records the composition structure of the spend.
	Accountant *dp.Accountant
}

// Run executes STPT end to end on a dataset whose first cfg.TTrain
// readings are the training prefix and whose remainder is the released
// horizon.
func Run(d *timeseries.Dataset, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if d.T() <= cfg.TTrain {
		return nil, fmt.Errorf("core: dataset length %d must exceed TTrain %d", d.T(), cfg.TTrain)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	acct := dp.NewAccountant("stpt", dp.Sequential)

	work := d
	if cfg.ClipFactor > 0 {
		work = d.Clone()
		work.Clip(cfg.ClipFactor)
	}
	norm := timeseries.FitNormalizer(work)
	normData := norm.Apply(work)

	// Phase 1: pattern recognition (ε_pattern).
	patScope := acct.Root().Child("pattern", dp.Sequential)
	pat, err := patternStep(normData, cfg, rng, patScope)
	if err != nil {
		return nil, err
	}

	// Phase 2: sanitisation of the released horizon (ε_sanitize).
	horizon := d.T() - cfg.TTrain
	truth := horizonMatrix(work, cfg.TTrain)
	cellSens := norm.Max // one user's clipped reading bounds a cell's change
	if cellSens <= 0 {
		cellSens = 1
	}
	lap := dp.NewLaplace(rng)
	sanScope := acct.Root().Child("sanitize", dp.Sequential)

	var sanitized *grid.Matrix
	parts := 0
	if cfg.NoPartitions {
		sanitized = sanitizePerCell(truth, cfg, cellSens, lap, sanScope)
	} else {
		partition := QuantizeMode(pat.Pattern, cfg.QuantLevels, cfg.Quant)
		parts = len(partition)
		sanitized = sanitizeStep(truth, partition, cfg, cellSens, lap, sanScope)
	}

	res := &Result{
		Sanitized:  sanitized,
		Truth:      truth,
		Pattern:    pat,
		Partitions: parts,
		Accountant: acct,
	}
	res.PatternMAE, res.PatternRMSE = patternError(normData, cfg.TTrain, pat.Pattern, horizon)
	return res, nil
}

// horizonMatrix builds the true consumption matrix over [tTrain, T).
func horizonMatrix(d *timeseries.Dataset, tTrain int) *grid.Matrix {
	horizon := d.T() - tTrain
	m := grid.NewMatrix(d.Cx, d.Cy, horizon)
	for _, s := range d.Series {
		for t := tTrain; t < d.T(); t++ {
			m.AddAt(s.Location.X, s.Location.Y, t-tTrain, s.Values[t])
		}
	}
	return m
}

// patternError evaluates C_pattern against the true normalised cell
// totals over the horizon — the quantity the pattern estimates (C_norm's
// cell sums), per the Theorem-6 representative semantics.
func patternError(norm *timeseries.Dataset, tTrain int, pattern *grid.Matrix, horizon int) (mae, rmse float64) {
	sums := grid.NewMatrix(norm.Cx, norm.Cy, horizon)
	for _, s := range norm.Series {
		for t := tTrain; t < norm.T(); t++ {
			sums.AddAt(s.Location.X, s.Location.Y, t-tTrain, s.Values[t])
		}
	}
	return timeseries.MAE(sums.Data(), pattern.Data()), timeseries.RMSE(sums.Data(), pattern.Data())
}
