package core

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/dp"
	"repro/internal/grid"
	"repro/internal/resilience"
	"repro/internal/timeseries"
)

// Result is the output of one STPT run.
type Result struct {
	// Sanitized is C_sanitized: the ε_tot-DP release of the consumption
	// matrix over the horizon [TTrain, T), in original (kWh) units.
	Sanitized *grid.Matrix
	// Truth is the non-private consumption matrix over the same horizon,
	// retained for utility evaluation only (never released).
	Truth *grid.Matrix
	// Pattern is C_pattern, the normalised private estimates.
	Pattern *PatternResult
	// PatternMAE/PatternRMSE compare C_pattern against the true
	// normalised horizon (the Figure 8(a,b,e,f) metrics).
	PatternMAE, PatternRMSE float64
	// Partitions is the number of non-empty quantization buckets.
	Partitions int
	// Accountant records the composition structure of the spend.
	Accountant *dp.Accountant
	// Recovery records how the run survived failures: total attempts,
	// whether it degraded past the configured model, and the final model
	// used. A clean run reports Attempts == 1, Degraded == false.
	Recovery *resilience.Report
}

// Run executes STPT end to end on a dataset whose first cfg.TTrain
// readings are the training prefix and whose remainder is the released
// horizon.
func Run(d *timeseries.Dataset, cfg Config) (*Result, error) {
	return RunContext(context.Background(), d, cfg)
}

// RunContext is Run with cooperative cancellation and fault recovery.
//
// Cancellation: the context is checked between phases, at every training
// batch and at every rollout row, so a cancelled or deadline-expired run
// stops promptly and returns the context's error.
//
// Recovery: a retryable failure (training divergence) re-runs the whole
// pipeline up to cfg.Retry.Attempts() times with a seed jittered by
// cfg.Retry.SeedJitter — each attempt draws fresh DP noise and fresh
// initial weights, which is what divergence under Laplace-noised training
// data needs. If every attempt fails, the models in cfg.FallbackModels
// are tried in order under the same per-model attempt budget; the default
// chain ends with ModelPersistence, which cannot diverge. The outcome is
// recorded in Result.Recovery. Note each attempt spends its noise budget
// afresh: a deployment resuming from a failed attempt should treat the
// retries' extra draws as additional ε or cache the sanitised tree (the
// DESIGN.md "Failure semantics" section discusses this).
func RunContext(ctx context.Context, d *timeseries.Dataset, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if d.T() <= cfg.TTrain {
		return nil, fmt.Errorf("core: dataset length %d must exceed TTrain %d", d.T(), cfg.TTrain)
	}

	report := &resilience.Report{}
	chain := []ModelKind{cfg.Model}
	for _, k := range cfg.FallbackModels {
		if k != cfg.Model {
			chain = append(chain, k)
		}
	}
	var lastErr error
	for mi, kind := range chain {
		attempt := cfg
		attempt.Model = kind
		for a := 0; a < cfg.Retry.Attempts(); a++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			// Attempt 0 of the configured model runs with the caller's
			// exact seed, preserving bit-for-bit reproducibility of
			// non-failing runs.
			attempt.Seed = cfg.Seed + int64(report.Attempts)*cfg.Retry.SeedJitter
			report.Attempts++
			res, err := runOnce(ctx, d, attempt)
			if err == nil {
				report.Degraded = mi > 0
				report.Final = kind.String()
				res.Recovery = report
				return res, nil
			}
			lastErr = err
			report.Note(err)
			if !resilience.IsRetryable(err) {
				return nil, err
			}
		}
	}
	return nil, fmt.Errorf("core: all %d attempts failed: %w", report.Attempts, lastErr)
}

// runOnce executes one pipeline attempt.
func runOnce(ctx context.Context, d *timeseries.Dataset, cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	acct := dp.NewAccountant("stpt", dp.Sequential)

	work := d
	if cfg.ClipFactor > 0 {
		work = d.Clone()
		work.Clip(cfg.ClipFactor)
	}
	norm := timeseries.FitNormalizerWorkers(work, cfg.Workers)
	normData := norm.Apply(work)

	// Phase 1: pattern recognition (ε_pattern).
	patScope := acct.Root().Child("pattern", dp.Sequential)
	pat, err := patternStep(ctx, normData, cfg, rng, patScope)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 2: sanitisation of the released horizon (ε_sanitize).
	horizon := d.T() - cfg.TTrain
	truth := horizonMatrix(work, cfg.TTrain)
	cellSens := norm.Max // one user's clipped reading bounds a cell's change
	if cellSens <= 0 {
		cellSens = 1
	}
	lap := dp.NewLaplace(rng)
	sanScope := acct.Root().Child("sanitize", dp.Sequential)

	var sanitized *grid.Matrix
	parts := 0
	if cfg.NoPartitions {
		sanitized = sanitizePerCell(truth, cfg, cellSens, lap, sanScope)
	} else {
		partition := QuantizeModeWorkers(pat.Pattern, cfg.QuantLevels, cfg.Quant, cfg.Workers)
		parts = len(partition)
		sanitized = sanitizeStep(truth, partition, cfg, cellSens, lap, sanScope)
	}

	res := &Result{
		Sanitized:  sanitized,
		Truth:      truth,
		Pattern:    pat,
		Partitions: parts,
		Accountant: acct,
	}
	res.PatternMAE, res.PatternRMSE = patternError(normData, cfg.TTrain, pat.Pattern, horizon)
	return res, nil
}

// horizonMatrix builds the true consumption matrix over [tTrain, T).
func horizonMatrix(d *timeseries.Dataset, tTrain int) *grid.Matrix {
	horizon := d.T() - tTrain
	m := grid.NewMatrix(d.Cx, d.Cy, horizon)
	for _, s := range d.Series {
		for t := tTrain; t < d.T(); t++ {
			m.AddAt(s.Location.X, s.Location.Y, t-tTrain, s.Values[t])
		}
	}
	return m
}

// patternError evaluates C_pattern against the true normalised cell
// totals over the horizon — the quantity the pattern estimates (C_norm's
// cell sums), per the Theorem-6 representative semantics.
func patternError(norm *timeseries.Dataset, tTrain int, pattern *grid.Matrix, horizon int) (mae, rmse float64) {
	sums := grid.NewMatrix(norm.Cx, norm.Cy, horizon)
	for _, s := range norm.Series {
		for t := tTrain; t < norm.T(); t++ {
			sums.AddAt(s.Location.X, s.Location.Y, t-tTrain, s.Values[t])
		}
	}
	return timeseries.MAE(sums.Data(), pattern.Data()), timeseries.RMSE(sums.Data(), pattern.Data())
}
