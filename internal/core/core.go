package core
