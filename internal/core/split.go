package core

import (
	"fmt"
	"math"
)

// SuggestBudgetSplit implements the paper's third future-work item
// (Section 7): an analytical model for dividing ε_tot between the pattern
// and sanitisation phases, replacing the constant 1:2 split of Appendix C.
//
// Both phases inject Laplace noise whose variance scales as 1/ε². Writing
// the end-to-end error as
//
//	E(f) ≈ a/f² + b/(1-f)²,   f = ε_pattern/ε_tot,
//
// the first-order condition gives the closed form
//
//	f* = a^{1/3} / (a^{1/3} + b^{1/3}),
//
// the same KKT structure as Theorem 8. The coefficients are the total
// noise variances each phase would inject at unit budget:
//
//   - a: the quadtree sanitisation injects, per level l with n_l = 4^l
//     neighbourhoods over a segment of s_l points, n_l·s_l independent
//     Laplace draws at scale sens_l·TTrain (per unit ε_pattern), hence
//     variance Σ_l n_l·s_l·2·(sens_l·TTrain)².
//   - b: the partition sanitisation at unit ε_sanitize with the Theorem-8
//     allocation has total variance 2·(Σ_i s_i^{2/3})³, approximated
//     before partitions exist by k partitions of pillar sensitivity
//     ≈ horizon/k cells (a pillar's buckets split the time axis k ways),
//     in units of the cell sensitivity.
//
// The model captures the U-shape of Figure 8(g): starving either phase
// blows up one of the two terms.
func SuggestBudgetSplit(cfg Config, cx, cy, horizon int) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if cx <= 0 || cy <= 0 || horizon <= 0 {
		return 0, fmt.Errorf("core: invalid geometry %dx%d horizon %d", cx, cy, horizon)
	}

	// Phase-1 variance coefficient at unit budget.
	levels := cfg.Depth + 1
	seg := (cfg.TTrain + levels - 1) / levels
	var a float64
	for d := 0; d <= cfg.Depth; d++ {
		nl := math.Pow(4, float64(d))
		sens := 1 / math.Pow(4, float64(log2int(cx)-d))
		scale := sens * float64(cfg.TTrain) // noise scale per point at ε=1
		a += nl * float64(seg) * 2 * scale * scale
	}

	// Phase-2 variance coefficient at unit budget: k partitions whose
	// pillar sensitivity is ≈ horizon/k cells each.
	k := cfg.QuantLevels
	if k <= 0 {
		k = 1
	}
	pillar := float64(horizon) / float64(k)
	if pillar < 1 {
		pillar = 1
	}
	sum23 := float64(k) * math.Pow(pillar, 2.0/3.0)
	b := 2 * math.Pow(sum23, 3)

	fa := math.Cbrt(a)
	fb := math.Cbrt(b)
	if fa+fb == 0 {
		return 0.5, nil
	}
	f := fa / (fa + fb)
	// Keep both phases alive: the analytic model ignores the pattern's
	// learning benefit, so clamp to a sane operating range.
	return clampFloat(f, 0.1, 0.9), nil
}

func log2int(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

func clampFloat(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
