package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/nn"
	"repro/internal/timeseries"
)

// testDataset builds a small dataset with a sinusoidal daily cycle and a
// spatial hotspot, enough signal for the pipeline to exercise every path.
func testDataset(cx, cy, n, T int, seed int64) *timeseries.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &timeseries.Dataset{Name: "synthetic", Cx: cx, Cy: cy}
	for i := 0; i < n; i++ {
		loc := timeseries.Location{X: rng.Intn(cx), Y: rng.Intn(cy)}
		base := 0.5 + rng.Float64()
		vals := make([]float64, T)
		for t := range vals {
			vals[t] = base * (1 + 0.5*math.Sin(2*math.Pi*float64(t)/12)) * (1 + 0.1*rng.NormFloat64())
			if vals[t] < 0 {
				vals[t] = 0
			}
		}
		d.Series = append(d.Series, &timeseries.Series{Location: loc, Values: vals})
	}
	return d
}

func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.TTrain = 12
	cfg.Depth = 2
	cfg.WindowSize = 3
	cfg.QuantLevels = 4
	cfg.EmbedDim = 4
	cfg.Hidden = 4
	cfg.Train = nn.TrainConfig{Epochs: 3, BatchSize: 8, ClipNorm: 5}
	cfg.ClipFactor = 3
	return cfg
}

func TestRunEndToEnd(t *testing.T) {
	d := testDataset(8, 8, 60, 24, 1)
	cfg := tinyConfig()
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sanitized.Cx != 8 || res.Sanitized.Cy != 8 || res.Sanitized.Ct != 12 {
		t.Fatalf("sanitized dims %dx%dx%d", res.Sanitized.Cx, res.Sanitized.Cy, res.Sanitized.Ct)
	}
	for _, v := range res.Sanitized.Data() {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("released value invalid: %v", v)
		}
	}
	if res.Partitions <= 0 || res.Partitions > cfg.QuantLevels {
		t.Fatalf("partitions = %d", res.Partitions)
	}
	if res.PatternMAE <= 0 || res.PatternRMSE < res.PatternMAE {
		t.Fatalf("pattern errors MAE %v RMSE %v", res.PatternMAE, res.PatternRMSE)
	}
}

func TestRunBudgetAccounting(t *testing.T) {
	d := testDataset(8, 8, 40, 20, 2)
	cfg := tinyConfig()
	cfg.EpsPattern = 4
	cfg.EpsSanitize = 6
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := res.Accountant.TotalEpsilon()
	if total > cfg.EpsTotal()+1e-9 {
		t.Fatalf("accountant total %v exceeds ε_tot %v", total, cfg.EpsTotal())
	}
	if total < cfg.EpsTotal()*0.5 {
		t.Fatalf("accountant total %v implausibly small vs ε_tot %v", total, cfg.EpsTotal())
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	d := testDataset(4, 4, 30, 18, 3)
	cfg := tinyConfig()
	cfg.Depth = 1
	a, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range a.Sanitized.Data() {
		if b.Sanitized.Data()[i] != v {
			t.Fatal("same seed produced different releases")
		}
	}
	cfg.Seed = 777
	c, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i, v := range a.Sanitized.Data() {
		if c.Sanitized.Data()[i] != v {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical releases")
	}
}

func TestRunValidation(t *testing.T) {
	d := testDataset(4, 4, 10, 20, 4)
	bad := tinyConfig()
	bad.EpsPattern = 0
	if _, err := Run(d, bad); err == nil {
		t.Fatal("expected budget validation error")
	}
	short := testDataset(4, 4, 10, 12, 4)
	cfg := tinyConfig() // TTrain = 12 leaves no horizon
	if _, err := Run(short, cfg); err == nil {
		t.Fatal("expected no-horizon error")
	}
}

func TestRunAllModels(t *testing.T) {
	d := testDataset(4, 4, 30, 18, 5)
	for _, kind := range []ModelKind{ModelRNN, ModelGRU, ModelLSTM, ModelAttentiveGRU, ModelTransformer, ModelPersistence} {
		cfg := tinyConfig()
		cfg.Depth = 1
		cfg.Model = kind
		res, err := Run(d, cfg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Sanitized.Ct != 6 {
			t.Fatalf("%v: horizon %d", kind, res.Sanitized.Ct)
		}
	}
}

func TestRunAblations(t *testing.T) {
	d := testDataset(8, 8, 40, 20, 6)
	for name, mod := range map[string]func(*Config){
		"flat-training":  func(c *Config) { c.FlatTraining = true },
		"uniform-budget": func(c *Config) { c.UniformBudget = true },
		"no-partitions":  func(c *Config) { c.NoPartitions = true },
	} {
		cfg := tinyConfig()
		mod(&cfg)
		if _, err := Run(d, cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestQuantizeDefinition4(t *testing.T) {
	p := grid.NewMatrix(2, 2, 2)
	// Values 0..7 over 8 cells, k=4 → buckets of equal width.
	v := 0.0
	for t := 0; t < 2; t++ {
		for y := 0; y < 2; y++ {
			for x := 0; x < 2; x++ {
				p.Set(x, y, t, v)
				v++
			}
		}
	}
	parts := QuantizeMode(p, 4, QuantLinear)
	if len(parts) != 4 {
		t.Fatalf("partitions = %d", len(parts))
	}
	total := 0
	for _, pt := range parts {
		total += len(pt.Cells)
		if len(pt.Cells) != 2 {
			t.Fatalf("bucket %d has %d cells", pt.Level, len(pt.Cells))
		}
	}
	if total != 8 {
		t.Fatalf("cells covered %d", total)
	}
}

func TestQuantizeLogSeparatesSkewedValues(t *testing.T) {
	// Values 0,0,0,0,1,1,10,1000: linear k=4 lumps everything except the
	// outlier into bucket 0; log buckets separate the magnitudes.
	p := grid.NewMatrix(2, 2, 2)
	copy(p.Data(), []float64{0, 0, 0, 0, 1, 1, 10, 1000})
	linear := QuantizeMode(p, 4, QuantLinear)
	if len(linear) != 2 { // bucket 0 (7 cells) + top bucket (1 cell)
		t.Fatalf("linear partitions = %d", len(linear))
	}
	logParts := QuantizeMode(p, 4, QuantLog)
	if len(logParts) < 3 {
		t.Fatalf("log partitions = %d, want >= 3", len(logParts))
	}
	// Zeros must not share a bucket with the 10s under log quantization.
	for _, pt := range logParts {
		hasZero, hasTen := false, false
		for _, c := range pt.Cells {
			switch p.At(c.x, c.y, c.t) {
			case 0:
				hasZero = true
			case 10:
				hasTen = true
			}
		}
		if hasZero && hasTen {
			t.Fatal("log quantization mixed 0 and 10 in one bucket")
		}
	}
}

func TestQuantizeConstantMatrix(t *testing.T) {
	p := grid.NewMatrix(2, 2, 3)
	for i := range p.Data() {
		p.Data()[i] = 0.5
	}
	parts := Quantize(p, 5)
	if len(parts) != 1 {
		t.Fatalf("constant matrix should form one partition, got %d", len(parts))
	}
	if len(parts[0].Cells) != 12 {
		t.Fatalf("cells %d", len(parts[0].Cells))
	}
	// All 3 time steps of each pillar share the bucket → PillarMax = 3.
	if parts[0].PillarMax != 3 {
		t.Fatalf("PillarMax = %d", parts[0].PillarMax)
	}
}

// Property: quantization always covers every cell exactly once, and each
// partition's PillarMax is at most Ct and at least 1.
func TestQuantizeCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cx, cy, ct := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(6)
		k := 1 + rng.Intn(10)
		p := grid.NewMatrix(cx, cy, ct)
		for i := range p.Data() {
			p.Data()[i] = rng.Float64()
		}
		parts := Quantize(p, k)
		total := 0
		for _, pt := range parts {
			total += len(pt.Cells)
			if pt.PillarMax < 1 || pt.PillarMax > ct {
				return false
			}
		}
		return total == cx*cy*ct
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property (Theorem 7): summing the per-pillar counts of a partition never
// exceeds PillarMax * number of pillars, and a partition built from a
// single pillar has PillarMax equal to its size.
func TestPillarMaxSinglePillar(t *testing.T) {
	p := grid.NewMatrix(1, 1, 6)
	for i := range p.Data() {
		p.Data()[i] = 0.3
	}
	parts := Quantize(p, 3)
	if len(parts) != 1 || parts[0].PillarMax != 6 {
		t.Fatalf("parts %d PillarMax %d", len(parts), parts[0].PillarMax)
	}
}

func TestModelKindString(t *testing.T) {
	names := map[ModelKind]string{
		ModelRNN: "rnn", ModelGRU: "gru", ModelLSTM: "lstm",
		ModelAttentiveGRU: "attentive-gru", ModelTransformer: "transformer",
		ModelPersistence: "persistence",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

// The released matrix should track total mass roughly: with a generous
// budget, total released consumption is within a factor of 2 of truth.
func TestReleasePreservesMass(t *testing.T) {
	d := testDataset(8, 8, 80, 24, 7)
	cfg := tinyConfig()
	cfg.EpsPattern = 20
	cfg.EpsSanitize = 100
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth := res.Truth.Total()
	got := res.Sanitized.Total()
	if got < truth/2 || got > truth*2 {
		t.Fatalf("mass distortion: truth %v released %v", truth, got)
	}
}
