package core

import (
	"fmt"
	"math"

	"repro/internal/dp"
	"repro/internal/grid"
	"repro/internal/parallel"
)

// Partition is one k-quantization bucket: a (possibly scattered) set of
// cells of the consumption matrix grouped by similar predicted value.
type Partition struct {
	Level int // quantization bucket index
	Cells []cellRef
	// PillarMax is the largest number of the partition's cells sharing one
	// (x, y) pillar — the Theorem-7 sensitivity in units of per-cell
	// sensitivity.
	PillarMax int
}

type cellRef struct{ x, y, t int }

// QuantMode selects the bucket geometry of the k-quantization.
type QuantMode int

const (
	// QuantLog cuts log(1+v) into k equal buckets. Consumption magnitudes
	// are heavy-tailed across space (a downtown cell holds orders of
	// magnitude more mass than a suburban one), so equal-width buckets in
	// the linear domain collapse almost every cell into bucket zero;
	// log-domain buckets keep partitions value-homogeneous — the stated
	// goal of the paper's partitioning — across the whole range. This is
	// post-processing of the private pattern matrix, so the choice has no
	// privacy cost. Default.
	QuantLog QuantMode = iota
	// QuantLinear is Definition 4 verbatim: equal-width buckets over
	// [min, max]. Kept for the ablation benchmarks.
	QuantLinear
)

// Quantize performs the k-quantization of Definition 4 over the pattern
// matrix: the value range is cut into k buckets (log-width by default, see
// QuantMode) and every cell is assigned to its bucket's partition. Empty
// partitions are dropped.
func Quantize(pattern *grid.Matrix, k int) []*Partition {
	return QuantizeMode(pattern, k, QuantLog)
}

// QuantizeMode is Quantize with an explicit bucket geometry.
func QuantizeMode(pattern *grid.Matrix, k int, mode QuantMode) []*Partition {
	return QuantizeModeWorkers(pattern, k, mode, 1)
}

// QuantizeModeWorkers is QuantizeMode with the cell scan sharded across
// workers. Shards cover contiguous stretches of the serial (y, x, t)
// enumeration and per-bucket cell lists are concatenated in shard order,
// so the partitioning — cell order included — is bit-identical to the
// serial scan for every worker count.
func QuantizeModeWorkers(pattern *grid.Matrix, k int, mode QuantMode, workers int) []*Partition {
	if k <= 0 {
		panic(fmt.Sprintf("core: quantization level %d must be positive", k))
	}
	key := func(v float64) float64 { return v }
	if mode == QuantLog {
		key = func(v float64) float64 { return math.Log1p(math.Max(0, v)) }
	}
	lo, hi := quantBounds(pattern.Data(), key, workers)
	span := hi - lo
	n := pattern.Cy * pattern.Cx * pattern.Ct
	// assign resolves the serial scan order: index o walks y, then x, then t.
	assign := func(o int) (cellRef, int) {
		y := o / (pattern.Cx * pattern.Ct)
		rem := o % (pattern.Cx * pattern.Ct)
		x := rem / pattern.Ct
		t := rem % pattern.Ct
		b := 0
		if span > 0 {
			b = int(float64(k) * (key(pattern.At(x, y, t)) - lo) / span)
			if b == k { // the maximum lands in the last bucket
				b = k - 1
			}
		}
		return cellRef{x, y, t}, b
	}
	shards := parallel.Shards(n, workers)
	perShard := make([][][]cellRef, len(shards))
	parallel.ForEachShard(workers, n, func(s int, r parallel.Range) {
		buckets := make([][]cellRef, k)
		for o := r.Lo; o < r.Hi; o++ {
			c, b := assign(o)
			buckets[b] = append(buckets[b], c)
		}
		perShard[s] = buckets
	})
	parts := make([]*Partition, k)
	for i := range parts {
		parts[i] = &Partition{Level: i}
		for s := range shards {
			parts[i].Cells = append(parts[i].Cells, perShard[s][i]...)
		}
	}
	var out []*Partition
	for _, p := range parts {
		if len(p.Cells) == 0 {
			continue
		}
		out = append(out, p)
	}
	parallel.ForEach(workers, len(out), func(i int) {
		out[i].PillarMax = pillarMax(out[i], pattern.Cx)
	})
	return out
}

// quantBounds returns min/max of key(v) over data; min/max reduction is
// exact, so the sharded scan matches the serial one bit for bit.
func quantBounds(data []float64, key func(float64) float64, workers int) (lo, hi float64) {
	shards := parallel.Shards(len(data), workers)
	los := make([]float64, len(shards))
	his := make([]float64, len(shards))
	parallel.ForEachShard(workers, len(data), func(s int, r parallel.Range) {
		l, h := math.Inf(1), math.Inf(-1)
		for _, v := range data[r.Lo:r.Hi] {
			kv := key(v)
			if kv < l {
				l = kv
			}
			if kv > h {
				h = kv
			}
		}
		los[s], his[s] = l, h
	})
	lo, hi = math.Inf(1), math.Inf(-1)
	for s := range shards {
		if los[s] < lo {
			lo = los[s]
		}
		if his[s] > hi {
			hi = his[s]
		}
	}
	return lo, hi
}

// pillarMax computes Theorem 7's sensitivity factor: the maximum number of
// partition cells sharing one xy pillar.
func pillarMax(p *Partition, cx int) int {
	counts := map[int]int{}
	best := 0
	for _, c := range p.Cells {
		key := c.y*cx + c.x
		counts[key]++
		if counts[key] > best {
			best = counts[key]
		}
	}
	return best
}

// sanitizeStep releases the true consumption matrix through the partition
// structure (Algorithm 1, lines 15-22): per partition, the true cell values
// are summed, perturbed with Laplace noise at sensitivity
// PillarMax·cellSens and a Theorem-8 (or uniform, for the ablation) budget
// share, and the noisy total is spread uniformly over the partition's
// cells. Negative released cells are clamped to zero (post-processing).
func sanitizeStep(cons *grid.Matrix, parts []*Partition, cfg Config, cellSens float64, lap *dp.Laplace, acct dp.Scope) *grid.Matrix {
	if cellSens <= 0 {
		panic(fmt.Sprintf("core: non-positive cell sensitivity %v", cellSens))
	}
	sens := make([]float64, len(parts))
	for i, p := range parts {
		sens[i] = float64(p.PillarMax) * cellSens
	}
	var budgets []float64
	if cfg.UniformBudget {
		budgets = dp.AllocateUniform(len(parts), cfg.EpsSanitize)
	} else {
		budgets = dp.AllocateOptimal(sens, cfg.EpsSanitize)
	}
	out := grid.NewMatrix(cons.Cx, cons.Cy, cons.Ct)
	scope := acct.Child("partitions", dp.Sequential)
	// Per-partition true sums are data-parallel: each index writes its own
	// slot, and each partition's cells are summed in their stored order, so
	// the sums match the serial scan bit for bit.
	sums := make([]float64, len(parts))
	parallel.ForEach(cfg.Workers, len(parts), func(i int) {
		var sum float64
		for _, c := range parts[i].Cells {
			sum += cons.At(c.x, c.y, c.t)
		}
		sums[i] = sum
	})
	// Noise is drawn serially in partition order: the Laplace stream is one
	// rng, and its draw order must depend only on the seed.
	shares := make([]float64, len(parts))
	for i, p := range parts {
		noisy := sums[i] + lap.Sample(dp.Scale(sens[i], budgets[i]))
		scope.Spend(budgets[i])
		share := noisy / float64(len(p.Cells))
		if share < 0 {
			share = 0
		}
		shares[i] = share
	}
	// Partitions tile the matrix disjointly, so spreading shares is
	// write-disjoint across partitions.
	parallel.ForEach(cfg.Workers, len(parts), func(i int) {
		for _, c := range parts[i].Cells {
			out.Set(c.x, c.y, c.t, shares[i])
		}
	})
	return out
}

// sanitizePerCell is the no-partitioning ablation: every cell of the
// released horizon gets an equal share of ε_sanitize, composed
// sequentially over time and in parallel over space (Theorem 5), i.e. the
// Identity scheme applied to the release window.
func sanitizePerCell(cons *grid.Matrix, cfg Config, cellSens float64, lap *dp.Laplace, acct dp.Scope) *grid.Matrix {
	perSlice := cfg.EpsSanitize / float64(cons.Ct)
	scale := dp.Scale(cellSens, perSlice)
	out := grid.NewMatrix(cons.Cx, cons.Cy, cons.Ct)
	for t := 0; t < cons.Ct; t++ {
		for y := 0; y < cons.Cy; y++ {
			for x := 0; x < cons.Cx; x++ {
				v := cons.At(x, y, t) + lap.Sample(scale)
				if v < 0 {
					v = 0
				}
				out.Set(x, y, t, v)
			}
		}
	}
	acct.Child("per-cell", dp.Sequential).Spend(cfg.EpsSanitize)
	return out
}
