package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dp"
	"repro/internal/grid"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/quadtree"
	"repro/internal/timeseries"
)

// patternCtxDim is the number of side features fed to the predictor along
// with each window: the source neighbourhood's normalised centre (x, y)
// and its spatial extent as a fraction of the grid. The paper's RNN input
// "comprises time series data along with their corresponding geographic
// locations"; the extent feature additionally tells the model which
// quadtree granularity a series came from.
const patternCtxDim = 3

// PatternResult carries the outputs of the pattern-recognition phase.
type PatternResult struct {
	// Pattern is C_pattern: private estimates of the normalised
	// consumption per cell over the released horizon (Cx x Cy x horizon).
	Pattern *grid.Matrix
	// TrainEstimates holds each cell's sanitised training series (the
	// root-to-leaf path through the quadtree levels), used for seeding
	// rollouts and for the flat-training ablation.
	TrainEstimates *grid.Matrix
	// Losses is the per-epoch training loss curve (nil for persistence).
	Losses []float64
	// Samples is the number of training windows.
	Samples int
}

// trainSeries is one sanitised series plus the context features describing
// where (and at what granularity) it was measured.
type trainSeries struct {
	values []float64
	ctx    []float64
}

// patternStep trains the predictor on sanitised training data and rolls it
// forward to produce C_pattern. norm is the full normalised dataset;
// horizon = norm.T() - cfg.TTrain values are predicted per cell.
//
// The privacy cost of everything here is cfg.EpsPattern: the quadtree
// representative series (or, for the flat ablation, the per-cell pillars)
// are the only place true data is touched, and each of the TTrain
// timestamps is charged EpsPattern/TTrain at its Theorem-6 sensitivity.
// Training and rollout are post-processing (Theorem 3).
func patternStep(ctx context.Context, norm *timeseries.Dataset, cfg Config, rng *rand.Rand, acct dp.Scope) (*PatternResult, error) {
	horizon := norm.T() - cfg.TTrain
	if horizon <= 0 {
		return nil, fmt.Errorf("core: dataset length %d leaves no released horizon beyond TTrain %d", norm.T(), cfg.TTrain)
	}
	lap := dp.NewLaplace(rng)

	var trainEst *grid.Matrix
	var corpus []trainSeries
	cellCtx := func(x, y int, frac float64) []float64 {
		return []float64{
			(float64(x) + 0.5) / float64(norm.Cx),
			(float64(y) + 0.5) / float64(norm.Cy),
			frac,
		}
	}
	leafFrac := 1.0 / float64(norm.Cx)

	if cfg.FlatTraining {
		trainEst = flatSanitizedTraining(norm, cfg, lap, acct)
		for y := 0; y < norm.Cy; y++ {
			for x := 0; x < norm.Cx; x++ {
				corpus = append(corpus, trainSeries{values: trainEst.Pillar(x, y), ctx: cellCtx(x, y, leafFrac)})
			}
		}
	} else {
		tree, err := quadtree.Build(norm, quadtree.Params{Cx: norm.Cx, Cy: norm.Cy, Depth: cfg.Depth, TTrain: cfg.TTrain})
		if err != nil {
			return nil, err
		}
		charged := tree.Sanitize(lap, cfg.EpsPattern)
		acct.Child("quadtree", dp.Sequential).Spend(charged)
		var denoised *smoothedTree
		if !cfg.RawSeeds {
			denoised = smoothTree(tree, norm.Cx, norm.Cy, cfg.TTrain, cfg.EpsPattern)
		}
		i := 0
		for _, lvl := range tree.Levels {
			for _, nb := range lvl.Neighborhoods {
				values := nb.Series
				if denoised != nil {
					values = denoised.Corpus[i]
				}
				corpus = append(corpus, trainSeries{
					values: values,
					ctx: []float64{
						(float64(nb.X0) + float64(nb.X1-nb.X0+1)/2) / float64(norm.Cx),
						(float64(nb.Y0) + float64(nb.Y1-nb.Y0+1)/2) / float64(norm.Cy),
						float64(nb.X1-nb.X0+1) / float64(norm.Cx),
					},
				})
				i++
			}
		}
		leafSide := norm.Cx >> cfg.Depth
		leafFrac = float64(leafSide) / float64(norm.Cx)
		if denoised != nil {
			trainEst = denoised.Est
		} else {
			trainEst = pathEstimates(tree, norm.Cx, norm.Cy, cfg.TTrain)
		}
	}

	res := &PatternResult{TrainEstimates: trainEst}

	if cfg.Model == ModelPersistence {
		res.Pattern = grid.NewMatrix(norm.Cx, norm.Cy, horizon)
		for y := 0; y < norm.Cy; y++ {
			for x := 0; x < norm.Cx; x++ {
				last := math.Max(0, trainEst.At(x, y, cfg.TTrain-1))
				for t := 0; t < horizon; t++ {
					res.Pattern.Set(x, y, t, last)
				}
			}
		}
		return res, nil
	}

	// Stacked windows across all sanitised series (Figure 2(b)), each
	// tagged with its source neighbourhood's context. Every window is
	// normalised by its own mean: cell totals span orders of magnitude
	// across space (density skew), and a model trained on absolute values
	// either saturates on the dense cells or collapses the sparse ones.
	// Shape-normalised training makes the model learn temporal dynamics,
	// while each cell's level is re-applied at rollout — so an
	// autoregressive rollout cannot drift a cell to the global mean.
	var samples []timeseries.Window
	for _, ts := range corpus {
		for _, w := range timeseries.SlidingWindows(ts.values, cfg.WindowSize) {
			m := windowLevel(w.Input)
			for i := range w.Input {
				w.Input[i] /= m
			}
			w.Target /= m
			w.Ctx = ts.ctx
			samples = append(samples, w)
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: no training windows: series too short for window %d (increase TTrain or decrease depth)", cfg.WindowSize)
	}
	res.Samples = len(samples)

	model, err := buildModel(cfg, rng)
	if err != nil {
		return nil, err
	}
	trainer := &nn.Trainer{Model: model, Opt: nn.NewRMSProp(cfg.LR), Cfg: cfg.Train, Rng: rng, Workers: cfg.Workers}
	losses, err := trainer.FitContext(ctx, samples)
	if err != nil {
		return nil, err
	}
	res.Losses = losses

	// Roll each cell's sanitised training path forward over the horizon,
	// conditioned on the cell's location at the finest trained extent.
	res.Pattern = grid.NewMatrix(norm.Cx, norm.Cy, horizon)
	if err := rolloutPattern(ctx, model, trainEst, res.Pattern, cfg, cellCtx, leafFrac, horizon); err != nil {
		return nil, err
	}
	return res, nil
}

// rolloutPattern fills pattern with each cell's autoregressive rollout.
// Rows are sharded across cfg.Workers, each shard driving its own shadow
// clone of the trained model (rollout only reads weights, but model
// instances own scratch buffers and are single-goroutine). Rollout draws
// no randomness, so the result is bit-identical for every worker count.
func rolloutPattern(ctx context.Context, model nn.Model, trainEst, pattern *grid.Matrix, cfg Config, cellCtx func(x, y int, frac float64) []float64, leafFrac float64, horizon int) error {
	rollRow := func(m nn.Model, y int) error {
		for x := 0; x < pattern.Cx; x++ {
			seed := trainEst.Pillar(x, y)
			if len(seed) < cfg.WindowSize {
				return fmt.Errorf("core: training path %d shorter than window %d", len(seed), cfg.WindowSize)
			}
			pred := rolloutLeveled(m, seed, cellCtx(x, y, leafFrac), horizon)
			for t, v := range pred {
				pattern.Set(x, y, t, v)
			}
		}
		return nil
	}
	clones := rolloutClones(model, cfg.Workers, pattern.Cy)
	if clones == nil {
		for y := 0; y < pattern.Cy; y++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := rollRow(model, y); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(clones))
	parallel.ForEachShard(cfg.Workers, pattern.Cy, func(s int, r parallel.Range) {
		for y := r.Lo; y < r.Hi; y++ {
			if err := ctx.Err(); err != nil {
				errs[s] = err
				return
			}
			if err := rollRow(clones[s], y); err != nil {
				errs[s] = err
				return
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// rolloutClones returns one model clone per rollout shard, or nil when
// the rollout should run serially.
func rolloutClones(model nn.Model, workers, rows int) []nn.Model {
	if workers <= 1 || rows < 2 {
		return nil
	}
	sc, ok := model.(nn.ShadowCloner)
	if !ok {
		return nil
	}
	shards := parallel.Shards(rows, workers)
	clones := make([]nn.Model, len(shards))
	for i := range clones {
		c := sc.ShadowClone()
		if c == nil {
			return nil
		}
		clones[i] = c
	}
	return clones
}

// windowLevel returns the normalisation level of a window: its mean plus a
// small constant so empty-cell windows map to (near) zero rather than 0/0.
func windowLevel(w []float64) float64 {
	var m float64
	for _, v := range w {
		m += v
	}
	m = m/float64(len(w)) + 1e-3
	return m
}

// rolloutLeveled extends the seed autoregressively in shape space: the
// cell's level is anchored once from the seed window, the model rolls the
// shape forward (predictions clamped to the training shapes' range so
// autoregression cannot drift), and the level is re-applied to every
// prediction. This is the rollout counterpart of the shape-normalised
// training windows: the temporal pattern comes from the model, the spatial
// level from the cell's own sanitised history.
func rolloutLeveled(model nn.Model, seed []float64, ctx []float64, horizon int) []float64 {
	ws := model.WindowSize()
	level := windowLevel(seed[len(seed)-ws:])
	shape := make([]float64, ws)
	for j, v := range seed[len(seed)-ws:] {
		shape[j] = v / level
	}
	out := make([]float64, horizon)
	for i := 0; i < horizon; i++ {
		p := nn.Predict(model, shape, ctx)
		// Training targets are shape-normalised values, overwhelmingly in
		// [0, 3]; clamping keeps a mis-extrapolating model from compounding.
		p = math.Max(0, math.Min(p, 3))
		out[i] = p * level
		copy(shape, shape[1:])
		shape[ws-1] = p
	}
	return out
}

// buildModel constructs the configured predictor.
func buildModel(cfg Config, rng *rand.Rand) (nn.Model, error) {
	ws, e, h := cfg.WindowSize, cfg.EmbedDim, cfg.Hidden
	switch cfg.Model {
	case ModelRNN:
		return nn.NewRecurrentModel("stpt-rnn", ws, patternCtxDim, e, nn.NewRNNCell("cell", e, h, rng), rng), nil
	case ModelGRU:
		return nn.NewRecurrentModel("stpt-gru", ws, patternCtxDim, e, nn.NewGRUCell("cell", e, h, rng), rng), nil
	case ModelLSTM:
		return nn.NewRecurrentModel("stpt-lstm", ws, patternCtxDim, e, nn.NewLSTMCell("cell", e, h, rng), rng), nil
	case ModelAttentiveGRU:
		return nn.NewAttentiveGRUModel("stpt-attgru", ws, patternCtxDim, e, h, rng), nil
	case ModelTransformer:
		return nn.NewTransformerModel("stpt-transformer", ws, patternCtxDim, e, 2*e, rng), nil
	default:
		return nil, fmt.Errorf("core: unknown model kind %v", cfg.Model)
	}
}

// pathEstimates reconstructs, for every cell, a full-length sanitised
// training series by following the cell's root-to-leaf path through the
// tree levels: level d's segment of the series comes from the depth-d
// neighbourhood containing the cell.
func pathEstimates(tree *quadtree.Tree, cx, cy, tTrain int) *grid.Matrix {
	m := grid.NewMatrix(cx, cy, tTrain)
	for _, lvl := range tree.Levels {
		for y := 0; y < cy; y++ {
			for x := 0; x < cx; x++ {
				nb := lvl.NeighborhoodAt(x, y, cx, cy)
				for i, v := range nb.Series {
					t := lvl.TimeStart + i
					if t < tTrain {
						m.Set(x, y, t, v)
					}
				}
			}
		}
	}
	return m
}

// flatSanitizedTraining is the ablation baseline of Section 4.2's
// "straightforward training method": each cell's training pillar (the
// cell's total normalised consumption, sensitivity 1 per timestamp) is
// perturbed with budget EpsPattern/TTrain per timestamp.
func flatSanitizedTraining(norm *timeseries.Dataset, cfg Config, lap *dp.Laplace, acct dp.Scope) *grid.Matrix {
	m := grid.NewMatrix(norm.Cx, norm.Cy, cfg.TTrain)
	for _, s := range norm.Series {
		for t := 0; t < cfg.TTrain; t++ {
			m.AddAt(s.Location.X, s.Location.Y, t, s.Values[t])
		}
	}
	perStep := cfg.EpsPattern / float64(cfg.TTrain)
	scale := dp.Scale(1, perStep)
	for y := 0; y < norm.Cy; y++ {
		for x := 0; x < norm.Cx; x++ {
			for t := 0; t < cfg.TTrain; t++ {
				m.Set(x, y, t, m.At(x, y, t)+lap.Sample(scale))
			}
		}
	}
	acct.Child("flat-training", dp.Sequential).Spend(cfg.EpsPattern)
	return m
}
