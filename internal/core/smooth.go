package core

import (
	"math"

	"repro/internal/grid"
	"repro/internal/quadtree"
)

// smoothedTree is the hierarchical empirical-Bayes denoising of a
// sanitised quadtree. It is pure post-processing of DP outputs
// (Theorem 3), so it costs no budget.
//
// The raw sanitised series are unusable at fine levels: at the leaf the
// Laplace scale is TTrain/ε_pattern (sensitivity 1), an order of magnitude
// above the signal, so a model trained on them learns to ignore its input
// and predict the global mean — collapsing every cell's rollout to the
// same value. The shrinkage model factorises each neighbourhood's series
// as
//
//	est(n, t) = g_l(t) · B_l(n)
//
// where g_l(t) — the mean over all 4^l neighbourhoods at time t — is a
// near-noiseless temporal profile (averaging 4^l independent noise draws),
// and B_l(n) is a spatial factor combined over levels 0..l: each level
// contributes its neighbourhood's relative level r = mean(series)/mean(g),
// weighted by how much of the observed cross-neighbourhood variance is
// signal rather than Laplace noise (an empirical-Bayes weight computed
// from the known noise variance). Coarse levels anchor the estimate; fine
// levels sharpen it only where their signal-to-noise supports it.
type smoothedTree struct {
	// Est holds per-cell denoised training series (Cx x Cy x TTrain).
	Est *grid.Matrix
	// Corpus holds one denoised series per neighbourhood per level, in
	// tree order, for model training.
	Corpus [][]float64
}

// smoothTree denoises the sanitised tree.
func smoothTree(tree *quadtree.Tree, cx, cy, tTrain int, epsPattern float64) *smoothedTree {
	perStep := epsPattern / float64(tTrain)

	// Spatial factor per cell, refined level by level. Within a level-l
	// block every cell shares the same factor (the partitions are nested).
	b := make([]float64, cx*cy)
	for i := range b {
		b[i] = 1
	}

	out := &smoothedTree{Est: grid.NewMatrix(cx, cy, tTrain)}
	for _, lvl := range tree.Levels {
		segLen := lvl.TimeEnd - lvl.TimeStart

		// Temporal profile g_l(t): mean over neighbourhoods.
		nCount := float64(len(lvl.Neighborhoods))
		g := make([]float64, segLen)
		for _, nb := range lvl.Neighborhoods {
			for i, v := range nb.Series {
				g[i] += v / nCount
			}
		}
		var gMean float64
		for _, v := range g {
			gMean += v
		}
		gMean /= float64(segLen)
		if gMean <= 0 {
			gMean = 1e-9
		}

		// Relative spatial level of each neighbourhood.
		ratios := make([]float64, len(lvl.Neighborhoods))
		for ni, nb := range lvl.Neighborhoods {
			var s float64
			for _, v := range nb.Series {
				s += v
			}
			ratios[ni] = s / float64(segLen) / gMean
		}
		noiseScale := lvl.Sensitivity / perStep
		noiseVar := 2 * noiseScale * noiseScale / float64(segLen) / (gMean * gMean)

		// Empirical-Bayes weights, estimated *per parent block*: the
		// signal variance among a parent's four children tells how much
		// genuine spatial structure this region has at this granularity.
		// Dense regions earn w ≈ 1 (trust the fine observation); uniform
		// or empty regions earn w ≈ 0 (keep the parent's estimate). A
		// single global weight would let one dense cluster force noisy
		// fine-level ratios onto the whole map.
		side := 1 << lvl.Depth
		weights := make([]float64, len(lvl.Neighborhoods))
		if lvl.Depth == 0 {
			weights[0] = 1 // root ratio is 1 by construction
		} else {
			pSide := side / 2
			for py := 0; py < pSide; py++ {
				for px := 0; px < pSide; px++ {
					var mean, m2 float64
					children := [4]int{
						(2*py)*side + 2*px, (2*py)*side + 2*px + 1,
						(2*py+1)*side + 2*px, (2*py+1)*side + 2*px + 1,
					}
					for _, ci := range children {
						mean += ratios[ci] / 4
					}
					for _, ci := range children {
						d := ratios[ci] - mean
						m2 += d * d
					}
					signalVar := math.Max(0, m2/4-noiseVar)
					w := 0.0
					if signalVar+noiseVar > 0 {
						w = signalVar / (signalVar + noiseVar)
					}
					for _, ci := range children {
						weights[ci] = w
					}
				}
			}
		}

		// Update per-cell factors and emit the level's denoised corpus.
		bw := cx / side
		bh := cy / side
		for ni, nb := range lvl.Neighborhoods {
			w := weights[ni]
			// Factor of this block after incorporating level l: read any
			// cell of the block (they are identical up to level l-1).
			bIdx := nb.Y0*cx + nb.X0
			factor := (1-w)*b[bIdx] + w*ratios[ni]
			factor = math.Max(0, factor)
			series := make([]float64, segLen)
			for i := range series {
				series[i] = math.Max(0, g[i]*factor)
			}
			out.Corpus = append(out.Corpus, series)
			// Write the denoised segment into every covered cell.
			for t := lvl.TimeStart; t < lvl.TimeEnd && t < tTrain; t++ {
				v := series[t-lvl.TimeStart]
				for y := nb.Y0; y <= nb.Y1; y++ {
					for x := nb.X0; x <= nb.X1; x++ {
						out.Est.Set(x, y, t, v)
					}
				}
			}
		}
		// Commit the level's factor refinement cell-wise.
		for y := 0; y < cy; y++ {
			for x := 0; x < cx; x++ {
				ni := (y/bh)*side + x/bw
				b[y*cx+x] = math.Max(0, (1-weights[ni])*b[y*cx+x]+weights[ni]*ratios[ni])
			}
		}
	}
	return out
}
