package core

import (
	"testing"
)

// QuantizeModeWorkers must reproduce the serial partitioning exactly —
// levels, cell order within each partition, and pillar sensitivities —
// for every worker count.
func TestQuantizeWorkersBitIdentical(t *testing.T) {
	d := testDataset(8, 8, 60, 24, 9)
	pattern := horizonMatrix(d, 12)
	for _, mode := range []QuantMode{QuantLog, QuantLinear} {
		serial := QuantizeMode(pattern, 6, mode)
		for _, workers := range []int{2, 3, 8, 100} {
			got := QuantizeModeWorkers(pattern, 6, mode, workers)
			if len(got) != len(serial) {
				t.Fatalf("mode=%d workers=%d: %d partitions, want %d", mode, workers, len(got), len(serial))
			}
			for i, p := range got {
				s := serial[i]
				if p.Level != s.Level || p.PillarMax != s.PillarMax || len(p.Cells) != len(s.Cells) {
					t.Fatalf("mode=%d workers=%d: partition %d header differs", mode, workers, i)
				}
				for j, c := range p.Cells {
					if c != s.Cells[j] {
						t.Fatalf("mode=%d workers=%d: partition %d cell %d = %v, want %v", mode, workers, i, j, c, s.Cells[j])
					}
				}
			}
		}
	}
}

// A full run at Workers=0 and Workers=1 must be bit-identical (both take
// the serial code paths), and a run at Workers=N must be self-consistent
// across repetitions.
func TestRunWorkersDeterminism(t *testing.T) {
	d := testDataset(8, 8, 60, 24, 4)
	run := func(workers int) *Result {
		cfg := tinyConfig()
		cfg.Workers = workers
		res, err := Run(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(0)
	serial := run(1)
	for i, v := range base.Sanitized.Data() {
		if serial.Sanitized.Data()[i] != v {
			t.Fatal("Workers=0 and Workers=1 releases differ")
		}
	}
	p4a := run(4)
	p4b := run(4)
	for i, v := range p4a.Sanitized.Data() {
		if p4b.Sanitized.Data()[i] != v {
			t.Fatal("Workers=4 is not deterministic across runs")
		}
	}
	// Sanity: the parallel release stays a valid DP release of the same
	// shape (training regroups float sums, so exact equality with serial
	// is not required).
	if p4a.Sanitized.Len() != base.Sanitized.Len() || p4a.Partitions <= 0 {
		t.Fatalf("parallel run shape: len %d partitions %d", p4a.Sanitized.Len(), p4a.Partitions)
	}
}

// The persistence model skips training and rollout randomness entirely, so
// its release must be bit-identical across ALL worker counts.
func TestRunWorkersPersistenceBitIdentical(t *testing.T) {
	d := testDataset(8, 8, 60, 24, 5)
	run := func(workers int) *Result {
		cfg := tinyConfig()
		cfg.Model = ModelPersistence
		cfg.Workers = workers
		res, err := Run(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	for _, workers := range []int{2, 4, 7} {
		got := run(workers)
		for i, v := range base.Sanitized.Data() {
			if got.Sanitized.Data()[i] != v {
				t.Fatalf("persistence release differs at workers=%d", workers)
			}
		}
	}
}
