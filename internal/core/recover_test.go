package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/resilience"
)

// poisonParams NaN-poisons a training parameter set, simulating the
// divergence that heavy DP noise induces in the RNN/GRU/transformer phase.
func poisonParams(payload any) {
	params := payload.([]*nn.Param)
	params[0].W.Data[0] = math.NaN()
}

// TestRunRetriesAfterDivergence proves the retry path: training is
// NaN-poisoned on the first attempt only, so the second attempt (jittered
// seed) succeeds with the configured model intact.
func TestRunRetriesAfterDivergence(t *testing.T) {
	d := testDataset(8, 8, 60, 24, 1)
	cfg := tinyConfig()
	cfg.Retry = resilience.Policy{MaxAttempts: 3, SeedJitter: 101}

	runs := 0
	inj := resilience.NewInjector().On(resilience.FaultTrainStep, func(_ context.Context, payload any) error {
		runs++
		if runs == 1 { // only the first fired epoch of the first attempt
			poisonParams(payload)
		}
		return nil
	})
	ctx := resilience.WithInjector(context.Background(), inj)

	res, err := RunContext(ctx, d, cfg)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	rec := res.Recovery
	if rec == nil || rec.Attempts != 2 || rec.Degraded || rec.Final != cfg.Model.String() {
		t.Fatalf("recovery = %+v", rec)
	}
	if len(rec.Errors) != 1 {
		t.Fatalf("errors = %v", rec.Errors)
	}
}

// TestRunDegradesToPersistence proves the fallback path: every training
// attempt diverges, so the run degrades to the model-free persistence
// pattern instead of failing, and records the degradation.
func TestRunDegradesToPersistence(t *testing.T) {
	d := testDataset(8, 8, 60, 24, 1)
	cfg := tinyConfig()
	cfg.Retry = resilience.Policy{MaxAttempts: 2, SeedJitter: 101}
	cfg.FallbackModels = []ModelKind{ModelPersistence}

	inj := resilience.NewInjector().On(resilience.FaultTrainStep, func(_ context.Context, payload any) error {
		poisonParams(payload) // every NN attempt diverges
		return nil
	})
	ctx := resilience.WithInjector(context.Background(), inj)

	res, err := RunContext(ctx, d, cfg)
	if err != nil {
		t.Fatalf("RunContext should degrade, not fail: %v", err)
	}
	rec := res.Recovery
	if rec == nil || !rec.Degraded || rec.Final != "persistence" {
		t.Fatalf("recovery = %+v", rec)
	}
	if rec.Attempts != 3 { // 2 diverged NN attempts + 1 persistence
		t.Fatalf("attempts = %d", rec.Attempts)
	}
	// The degraded release is still a valid DP matrix.
	if res.Sanitized == nil || res.Sanitized.Ct != d.T()-cfg.TTrain {
		t.Fatal("degraded run produced no release")
	}
	for _, v := range res.Sanitized.Data() {
		if math.IsNaN(v) {
			t.Fatal("degraded release contains NaN")
		}
	}
}

// TestRunFailsWithoutFallback: with retries exhausted and no fallback
// chain, the run fails with the (retryable) divergence error.
func TestRunFailsWithoutFallback(t *testing.T) {
	d := testDataset(8, 8, 60, 24, 1)
	cfg := tinyConfig()
	cfg.Retry = resilience.Policy{MaxAttempts: 2, SeedJitter: 101}
	cfg.FallbackModels = nil

	inj := resilience.NewInjector().On(resilience.FaultTrainStep, func(_ context.Context, payload any) error {
		poisonParams(payload)
		return nil
	})
	ctx := resilience.WithInjector(context.Background(), inj)

	if _, err := RunContext(ctx, d, cfg); err == nil {
		t.Fatal("expected failure without fallback")
	} else if !resilience.IsRetryable(err) {
		t.Fatalf("terminal error lost its class: %v", err)
	}
}

// TestRunContextCancelled: a cancelled context aborts immediately and is
// not retried.
func TestRunContextCancelled(t *testing.T) {
	d := testDataset(8, 8, 60, 24, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, d, tinyConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

// TestRunDeadlineDuringTraining proves cancellation is cooperative inside
// the epoch loop: a fault hook stalls training past the deadline, and the
// run returns DeadlineExceeded promptly instead of retrying or falling
// back (deadline expiry is not retryable).
func TestRunDeadlineDuringTraining(t *testing.T) {
	d := testDataset(8, 8, 60, 24, 1)
	cfg := tinyConfig()
	cfg.Train.Epochs = 50 // long enough that the deadline lands mid-fit

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	inj := resilience.NewInjector().On(resilience.FaultTrainStep, func(ctx context.Context, _ any) error {
		<-ctx.Done() // delay past the deadline
		return nil
	})
	start := time.Now()
	_, err := RunContext(resilience.WithInjector(ctx, inj), d, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation not prompt: %v", elapsed)
	}
}

// TestRunRecoveryOnCleanRun: an untouched run reports a clean recovery.
func TestRunRecoveryOnCleanRun(t *testing.T) {
	d := testDataset(8, 8, 60, 24, 1)
	res, err := Run(d, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Recovery
	if rec == nil || rec.Attempts != 1 || rec.Degraded || len(rec.Errors) != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
}
