package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dp"
	"repro/internal/nn"
	"repro/internal/quadtree"
	"repro/internal/timeseries"
)

// hotspotDataset puts heavy consumption in one quadrant and nothing in the
// rest — the spatial structure the shrinkage must recover.
func hotspotDataset(cx int, T int, hot float64) *timeseries.Dataset {
	d := &timeseries.Dataset{Cx: cx, Cy: cx}
	for y := 0; y < cx; y++ {
		for x := 0; x < cx; x++ {
			v := 0.01
			if x < cx/2 && y < cx/2 {
				v = hot
			}
			vals := make([]float64, T)
			for t := range vals {
				vals[t] = v
			}
			d.Series = append(d.Series, &timeseries.Series{
				Location: timeseries.Location{X: x, Y: y}, Values: vals,
			})
		}
	}
	return d
}

func buildSanitizedTree(t *testing.T, d *timeseries.Dataset, depth, tTrain int, eps float64, seed int64) *quadtree.Tree {
	t.Helper()
	tree, err := quadtree.Build(d, quadtree.Params{Cx: d.Cx, Cy: d.Cy, Depth: depth, TTrain: tTrain})
	if err != nil {
		t.Fatal(err)
	}
	tree.Sanitize(dp.NewLaplace(rand.New(rand.NewSource(seed))), eps)
	return tree
}

func TestSmoothTreeRecoversHotspot(t *testing.T) {
	const cx, tTrain = 8, 24
	d := hotspotDataset(cx, tTrain, 1.0)
	tree := buildSanitizedTree(t, d, 3, tTrain, 20, 1)
	sm := smoothTree(tree, cx, cx, tTrain, 20)

	// Mean denoised level inside vs outside the hotspot.
	var hot, cold float64
	for t0 := 0; t0 < tTrain; t0++ {
		hot += sm.Est.At(1, 1, t0)
		cold += sm.Est.At(6, 6, t0)
	}
	if hot < 4*cold {
		t.Fatalf("hotspot not recovered: hot %v vs cold %v", hot, cold)
	}
	for _, v := range sm.Est.Data() {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("denoised estimate invalid: %v", v)
		}
	}
}

func TestSmoothTreeCorpusShapeMatchesTree(t *testing.T) {
	const cx, tTrain = 8, 16
	d := hotspotDataset(cx, tTrain, 0.5)
	tree := buildSanitizedTree(t, d, 2, tTrain, 10, 2)
	sm := smoothTree(tree, cx, cx, tTrain, 10)
	want := 1 + 4 + 16
	if len(sm.Corpus) != want {
		t.Fatalf("corpus series %d, want %d", len(sm.Corpus), want)
	}
	i := 0
	for _, lvl := range tree.Levels {
		for range lvl.Neighborhoods {
			if len(sm.Corpus[i]) != lvl.TimeEnd-lvl.TimeStart {
				t.Fatalf("corpus %d length %d, want %d", i, len(sm.Corpus[i]), lvl.TimeEnd-lvl.TimeStart)
			}
			i++
		}
	}
}

func TestSmoothTreeKeepsEmptyRegionsNearZero(t *testing.T) {
	const cx, tTrain = 8, 24
	// Strong mass only in one quadrant; the empty corner should stay well
	// below the hotspot despite leaf-level noise.
	d := hotspotDataset(cx, tTrain, 2.0)
	var hot, cold float64
	const trials = 10
	for seed := int64(0); seed < trials; seed++ {
		tree := buildSanitizedTree(t, d, 3, tTrain, 10, seed)
		sm := smoothTree(tree, cx, cx, tTrain, 10)
		for t0 := 0; t0 < tTrain; t0++ {
			hot += sm.Est.At(1, 1, t0)
			cold += sm.Est.At(7, 7, t0)
		}
	}
	if cold > hot/3 {
		t.Fatalf("empty region not suppressed: cold %v vs hot %v", cold, hot)
	}
}

func TestSanitizePerCellPreservesMassWithHugeBudget(t *testing.T) {
	d := testDataset(8, 8, 60, 20, 9)
	cfg := tinyConfig()
	cfg.EpsSanitize = 1e6
	lap := dp.NewLaplace(rand.New(rand.NewSource(3)))
	acct := dp.NewAccountant("t", dp.Sequential)
	truth := horizonMatrix(d, cfg.TTrain)
	rel := sanitizePerCell(truth, cfg, 1, lap, acct.Root())
	for i, v := range rel.Data() {
		if math.Abs(v-truth.Data()[i]) > 0.01 {
			t.Fatalf("huge budget should be near-exact: %v vs %v", v, truth.Data()[i])
		}
	}
	if acct.TotalEpsilon() != 1e6 {
		t.Fatalf("accountant %v", acct.TotalEpsilon())
	}
}

func TestSanitizeStepMassAndClamping(t *testing.T) {
	d := testDataset(8, 8, 60, 20, 10)
	cfg := tinyConfig()
	cfg.EpsSanitize = 1e6
	truth := horizonMatrix(d, cfg.TTrain)
	pattern := truth.Clone() // oracle pattern
	parts := QuantizeMode(pattern, 16, QuantLog)
	lap := dp.NewLaplace(rand.New(rand.NewSource(4)))
	acct := dp.NewAccountant("t", dp.Sequential)
	rel := sanitizeStep(truth, parts, cfg, 1, lap, acct.Root())
	// With a huge budget, total mass must match almost exactly.
	if math.Abs(rel.Total()-truth.Total()) > truth.Total()*0.001 {
		t.Fatalf("mass %v vs %v", rel.Total(), truth.Total())
	}
	for _, v := range rel.Data() {
		if v < 0 {
			t.Fatalf("negative released value %v", v)
		}
	}
	// Budget spent equals EpsSanitize.
	if math.Abs(acct.TotalEpsilon()-cfg.EpsSanitize) > 1e-6*cfg.EpsSanitize {
		t.Fatalf("spent %v, want %v", acct.TotalEpsilon(), cfg.EpsSanitize)
	}
}

func TestRolloutLeveledAnchorsEmptyCells(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// A model that always predicts shape 1.5 — rollout output must stay
	// proportional to the seed's level.
	m := buildConstantModel(t, rng)
	zeroSeed := []float64{0, 0, 0, 0}
	out := rolloutLeveled(m, zeroSeed, []float64{0.5, 0.5, 0.1}, 5)
	for _, v := range out {
		if v > 0.01 {
			t.Fatalf("empty-cell rollout leaked mass: %v", out)
		}
	}
	bigSeed := []float64{10, 10, 10, 10}
	outBig := rolloutLeveled(m, bigSeed, []float64{0.5, 0.5, 0.1}, 5)
	if outBig[0] < 1 {
		t.Fatalf("dense-cell rollout lost its level: %v", outBig)
	}
}

// buildConstantModel trains a tiny net to output ~1.0 for any input, fast.
func buildConstantModel(t *testing.T, rng *rand.Rand) *constModel {
	t.Helper()
	return &constModel{}
}

// constModel is a trivial nn.Model stub predicting 1.0.
type constModel struct{}

func (c *constModel) Name() string                            { return "const" }
func (c *constModel) WindowSize() int                         { return 4 }
func (c *constModel) CtxSize() int                            { return 3 }
func (c *constModel) Params() []*nn.Param                     { return nil }
func (c *constModel) Forward(w, ctx []float64) (float64, any) { return 1.0, nil }
func (c *constModel) Backward(cache any, d float64)           {}
