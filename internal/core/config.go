// Package core implements STPT (Spatio-Temporal Private Timeseries),
// Algorithm 1 of the paper: a pattern-recognition phase that privately
// trains a sequence model on a hierarchically sanitised quadtree of the
// training prefix, followed by a sanitisation phase that k-quantizes the
// predicted pattern matrix into homogeneous partitions and releases
// Laplace-sanitised partition aggregates.
package core

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/resilience"
)

// ModelKind selects the pattern-recognition network (Figure 8(i)).
type ModelKind int

const (
	// ModelRNN is a vanilla Elman RNN — the paper's base design.
	ModelRNN ModelKind = iota
	// ModelGRU is a gated recurrent unit.
	ModelGRU
	// ModelLSTM is a long short-term memory network.
	ModelLSTM
	// ModelAttentiveGRU is self-attention feeding a GRU — the unit the
	// paper's Appendix C describes and the STPT default.
	ModelAttentiveGRU
	// ModelTransformer is a one-block transformer encoder.
	ModelTransformer
	// ModelPersistence is the model-free ablation: the pattern matrix
	// repeats each cell's last sanitised training value.
	ModelPersistence
)

// String names the model kind.
func (k ModelKind) String() string {
	switch k {
	case ModelRNN:
		return "rnn"
	case ModelGRU:
		return "gru"
	case ModelLSTM:
		return "lstm"
	case ModelAttentiveGRU:
		return "attentive-gru"
	case ModelTransformer:
		return "transformer"
	case ModelPersistence:
		return "persistence"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(k))
	}
}

// Config holds every STPT knob. Zero values are invalid; use
// DefaultConfig and override.
type Config struct {
	// Privacy budgets (Eq. 7): ε_tot = EpsPattern + EpsSanitize.
	EpsPattern  float64
	EpsSanitize float64

	// TTrain is the training prefix length; the remaining T - TTrain
	// readings form the released horizon.
	TTrain int
	// Depth is the quadtree depth (levels 0..Depth).
	Depth int
	// WindowSize is the sliding-window length ws.
	WindowSize int
	// QuantLevels is k, the number of quantization buckets (Def. 4).
	QuantLevels int
	// Quant selects linear (Def. 4 verbatim) or log-domain buckets.
	Quant QuantMode

	// ClipFactor caps each reading before normalisation (Table 2's
	// sensitivity clipping factor). <= 0 disables clipping.
	ClipFactor float64

	// Model selects the predictor; EmbedDim/Hidden size it.
	Model    ModelKind
	EmbedDim int
	Hidden   int
	Train    nn.TrainConfig
	LR       float64

	// Seed makes the whole run reproducible.
	Seed int64

	// Workers bounds the worker pool used by the run's data-parallel
	// stages: mini-batch gradient computation, quantization, partition
	// sums and the rollout. The zero value (and 1) runs the historical
	// serial path bit for bit. For a fixed Workers = N every stage is
	// deterministic; all stages except training are additionally
	// bit-identical across worker counts (they shard exact reductions or
	// disjoint writes), while training regroups floating-point sums.
	// Noise draws are never parallelised, so the DP noise sequence
	// depends only on Seed.
	Workers int

	// Retry governs recovery from retryable failures — in practice
	// DP-noise-induced training divergence. Each retry re-runs the
	// pipeline with a deterministically jittered seed (fresh noise and
	// initial weights). The zero value means a single attempt, i.e. the
	// pre-resilience behaviour.
	Retry resilience.Policy
	// FallbackModels are tried in order once Retry is exhausted for the
	// configured Model; DefaultConfig ends the chain with
	// ModelPersistence, which cannot diverge, so a run degrades to the
	// model-free pattern instead of failing. The degradation is recorded
	// in Result.Recovery. An empty chain restores fail-fast behaviour.
	FallbackModels []ModelKind

	// Ablation switches (DESIGN.md §5).
	FlatTraining  bool // sanitise per-cell training pillars instead of the quadtree
	UniformBudget bool // uniform per-partition budget instead of Theorem 8
	NoPartitions  bool // skip k-quantization: per-cell release of the horizon
	RawSeeds      bool // skip hierarchical empirical-Bayes denoising of rollout seeds
}

// DefaultConfig mirrors the paper's experimental testbed (Appendix C),
// with network sizes scaled down to CPU-friendly defaults; the bench
// harness can restore embed 128 / hidden 64.
func DefaultConfig() Config {
	return Config{
		EpsPattern:     10,
		EpsSanitize:    20,
		TTrain:         100,
		Depth:          5,
		WindowSize:     6,
		QuantLevels:    16,
		Model:          ModelAttentiveGRU,
		EmbedDim:       16,
		Hidden:         16,
		Train:          nn.TrainConfig{Epochs: 20, BatchSize: 32, ClipNorm: 5},
		LR:             1e-3,
		Seed:           1,
		Retry:          resilience.DefaultPolicy(),
		FallbackModels: []ModelKind{ModelPersistence},
	}
}

// Validate rejects structurally impossible configurations.
func (c Config) Validate() error {
	if c.EpsPattern <= 0 || c.EpsSanitize <= 0 {
		return fmt.Errorf("core: budgets must be positive (pattern %v, sanitize %v)", c.EpsPattern, c.EpsSanitize)
	}
	if c.TTrain <= 0 {
		return fmt.Errorf("core: TTrain %d must be positive", c.TTrain)
	}
	if c.WindowSize <= 0 {
		return fmt.Errorf("core: window size %d must be positive", c.WindowSize)
	}
	if c.QuantLevels <= 0 && !c.NoPartitions {
		return fmt.Errorf("core: quantization levels %d must be positive", c.QuantLevels)
	}
	if c.Model != ModelPersistence {
		if c.EmbedDim <= 0 || c.Hidden <= 0 {
			return fmt.Errorf("core: embed %d and hidden %d must be positive", c.EmbedDim, c.Hidden)
		}
		if c.Train.Epochs <= 0 || c.Train.BatchSize <= 0 || c.LR <= 0 {
			return fmt.Errorf("core: invalid training config")
		}
	}
	return nil
}

// EpsTotal returns ε_tot = ε_pattern + ε_sanitize (Eq. 7).
func (c Config) EpsTotal() float64 { return c.EpsPattern + c.EpsSanitize }
