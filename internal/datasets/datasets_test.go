package datasets

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSpecsMatchTable2(t *testing.T) {
	if CER.Households != 5000 || CA.Households != 250 || MI.Households != 250 || TX.Households != 250 {
		t.Fatal("household counts diverge from Table 2")
	}
	if CER.ClipFactor != 1.85 || TX.ClipFactor != 2.18 {
		t.Fatal("clip factors diverge from Table 2")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"CER", "CA", "MI", "TX"} {
		s, err := ByName(name)
		if err != nil || s.Name != name {
			t.Fatalf("ByName(%q) = %+v, %v", name, s, err)
		}
	}
	if _, err := ByName("XX"); err == nil {
		t.Fatal("expected error")
	}
}

func TestGeneratedStatsApproximateSpec(t *testing.T) {
	// One week of hourly data is enough to converge the moments.
	for _, spec := range All() {
		d := spec.Generate(Uniform, 16, 16, 7*24, 1)
		st := Summarize(d)
		if st.Households != spec.Households {
			t.Fatalf("%s: households %d", spec.Name, st.Households)
		}
		if relErr(st.Mean, spec.MeanKWh) > 0.25 {
			t.Errorf("%s: mean %v vs spec %v", spec.Name, st.Mean, spec.MeanKWh)
		}
		if relErr(st.Std, spec.StdKWh) > 0.4 {
			t.Errorf("%s: std %v vs spec %v", spec.Name, st.Std, spec.StdKWh)
		}
		if st.Max > spec.MaxKWh+1e-9 {
			t.Errorf("%s: max %v exceeds spec cap %v", spec.Name, st.Max, spec.MaxKWh)
		}
	}
}

func relErr(got, want float64) float64 { return math.Abs(got-want) / want }

func TestGenerateDeterministic(t *testing.T) {
	a := CA.Generate(Normal, 8, 8, 48, 7)
	b := CA.Generate(Normal, 8, 8, 48, 7)
	for i := range a.Series {
		if a.Series[i].Location != b.Series[i].Location {
			t.Fatal("locations differ for same seed")
		}
		for j := range a.Series[i].Values {
			if a.Series[i].Values[j] != b.Series[i].Values[j] {
				t.Fatal("values differ for same seed")
			}
		}
	}
	c := CA.Generate(Normal, 8, 8, 48, 8)
	if c.Series[0].Values[0] == a.Series[0].Values[0] {
		t.Fatal("different seeds produced identical first value")
	}
}

func TestLayoutsProduceValidAndDistinctConcentrations(t *testing.T) {
	const n = 2000
	spec := Spec{Name: "t", Households: n, MeanKWh: 0.5, StdKWh: 1, MaxKWh: 10, ClipFactor: 1}
	concentration := func(l Layout) float64 {
		d := spec.Generate(l, 16, 16, 2, 3)
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		counts := map[[2]int]int{}
		for _, s := range d.Series {
			counts[[2]int{s.Location.X, s.Location.Y}]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		return float64(best) / n
	}
	u := concentration(Uniform)
	nm := concentration(Normal)
	la := concentration(LosAngeles)
	// Uniform spreads ~n/256 per cell; clustered layouts concentrate more.
	if nm < 1.2*u {
		t.Errorf("normal layout concentration %v not above uniform %v", nm, u)
	}
	if la < 1.2*u {
		t.Errorf("LA layout concentration %v not above uniform %v", la, u)
	}
}

func TestWeekdayTotalsWeekendEffect(t *testing.T) {
	d := CER.Generate(Uniform, 8, 8, 14*24, 5) // two weeks
	tot := WeekdayTotals(d)
	weekday := (tot[0] + tot[1] + tot[2] + tot[3] + tot[4]) / 5
	weekend := (tot[5] + tot[6]) / 2
	if weekend <= weekday {
		t.Fatalf("weekend %v should exceed weekday %v (Figure 9 shape)", weekend, weekday)
	}
}

func TestDiurnalMeanIsOne(t *testing.T) {
	var sum float64
	for h := 0; h < 24; h++ {
		sum += diurnal(h)
	}
	if math.Abs(sum/24-1) > 0.05 {
		t.Fatalf("diurnal mean %v, want ~1", sum/24)
	}
}

func TestParseLayout(t *testing.T) {
	for s, want := range map[string]Layout{"uniform": Uniform, "normal": Normal, "losangeles": LosAngeles, "la": LosAngeles} {
		got, err := ParseLayout(s)
		if err != nil || got != want {
			t.Fatalf("ParseLayout(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLayout("x"); err == nil {
		t.Fatal("expected error")
	}
	if Uniform.String() != "uniform" || LosAngeles.String() != "losangeles" {
		t.Fatal("layout names wrong")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := CA.Generate(Uniform, 8, 8, 12, 2)
	var buf bytes.Buffer
	if err := SaveCSV(d, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(&buf, "CA", 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != d.N() || back.T() != d.T() || back.Cx != 8 {
		t.Fatalf("round trip shape: n=%d T=%d cx=%d", back.N(), back.T(), back.Cx)
	}
	for i := range d.Series {
		if back.Series[i].Location != d.Series[i].Location {
			t.Fatal("location mismatch")
		}
		for j := range d.Series[i].Values {
			if math.Abs(back.Series[i].Values[j]-d.Series[i].Values[j]) > 1e-12 {
				t.Fatal("value mismatch")
			}
		}
	}
}

func TestLoadCSVInfersGrid(t *testing.T) {
	csv := "x,y,v0\n0,0,1.5\n9,13,2.5\n"
	d, err := LoadCSV(strings.NewReader(csv), "t", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cx != 16 || d.Cy != 16 {
		t.Fatalf("inferred grid %dx%d, want 16x16", d.Cx, d.Cy)
	}
}

func TestLoadCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"",                 // empty
		"x,y,v0\n",         // header only
		"x,y,v0\n1,2\n",    // short row
		"x,y,v0\na,2,3\n",  // bad x
		"x,y,v0\n1,b,3\n",  // bad y
		"x,y,v0\n1,2,zz\n", // bad value
		"x,y,v0\n-1,2,3\n", // negative location
		"x,y\n1,2\n",       // no value columns
	}
	for i, c := range cases {
		if _, err := LoadCSV(strings.NewReader(c), "t", 0, 0); err == nil {
			t.Errorf("case %d should fail: %q", i, c)
		}
	}
}
