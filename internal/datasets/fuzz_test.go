package datasets

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzLoadCSV hammers the household-CSV loader with arbitrary bytes. The
// invariant under fuzz is containment, not success: LoadCSV may reject
// input with an error, but it must never panic, hang, or hand back a
// dataset that fails its own Validate — and every accepted reading must
// be finite. The corpus seeds cover the shapes the unit tests exercise
// (valid files, malformed rows, non-finite readings, huge fields) so the
// fuzzer starts from structurally interesting inputs. Historical catch:
// a row with x ≈ 2^62 drove the power-of-two side inference into signed
// overflow and an infinite loop before MaxGridSide bounded locations.
func FuzzLoadCSV(f *testing.F) {
	f.Add([]byte("x,y,v0,v1\n0,0,1.5,2\n1,1,0,3\n"))            // valid
	f.Add([]byte("x,y,v0\n0,0,1\n7,3,2\n"))                     // valid, inferred 8x8 grid
	f.Add([]byte("x,y,v0,v1\n0,0,1.5,NaN\n"))                   // non-finite reading
	f.Add([]byte("x,y,v0,v1\n0,0,+Inf,2\n"))                    // non-finite reading
	f.Add([]byte("x,y,v0,v1\n0,0,1\n"))                         // truncated row
	f.Add([]byte("x,y,v0,v1\n0,0,1,2,3\n"))                     // oversized row
	f.Add([]byte("x,y,v0\nleft,top,much\n"))                    // non-numeric fields
	f.Add([]byte("x,y,v0\n-1,0,1\n"))                           // negative location
	f.Add([]byte("x,y,v0\n4611686018427387905,0,1\n"))          // overflow-inducing x
	f.Add([]byte("x,y,v0\n0,0,1e309\n"))                        // float overflow to +Inf
	f.Add([]byte("x,y,v0\n0,0," + strings.Repeat("9", 400)))    // huge numeric field
	f.Add([]byte("x,y," + strings.Repeat("v,", 300) + "v\n"))   // very wide header
	f.Add([]byte("\"x\",\"y\",\"v0\"\n\"0\",\"0\",\"1.25\"\n")) // quoted fields
	f.Add([]byte(""))                                           // empty
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := LoadCSV(bytes.NewReader(data), "fuzz", 0, 0)
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted dataset fails Validate: %v", err)
		}
		if d.Cx <= 0 || d.Cy <= 0 || d.Cx > MaxGridSide || d.Cy > MaxGridSide {
			t.Fatalf("accepted dataset has out-of-range grid %dx%d", d.Cx, d.Cy)
		}
		for _, s := range d.Series {
			for _, v := range s.Values {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("accepted dataset contains non-finite reading %v", v)
				}
			}
		}
	})
}
