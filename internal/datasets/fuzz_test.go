package datasets

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzLoadCSV hammers the household-CSV loader with arbitrary bytes. The
// invariant under fuzz is containment, not success: LoadCSV may reject
// input with an error, but it must never panic, hang, or hand back a
// dataset that fails its own Validate — and every accepted reading must
// be finite. The corpus seeds cover the shapes the unit tests exercise
// (valid files, malformed rows, non-finite readings, huge fields) so the
// fuzzer starts from structurally interesting inputs. Historical catch:
// a row with x ≈ 2^62 drove the power-of-two side inference into signed
// overflow and an infinite loop before MaxGridSide bounded locations.
func FuzzLoadCSV(f *testing.F) {
	f.Add([]byte("x,y,v0,v1\n0,0,1.5,2\n1,1,0,3\n"))            // valid
	f.Add([]byte("x,y,v0\n0,0,1\n7,3,2\n"))                     // valid, inferred 8x8 grid
	f.Add([]byte("x,y,v0,v1\n0,0,1.5,NaN\n"))                   // non-finite reading
	f.Add([]byte("x,y,v0,v1\n0,0,+Inf,2\n"))                    // non-finite reading
	f.Add([]byte("x,y,v0,v1\n0,0,1\n"))                         // truncated row
	f.Add([]byte("x,y,v0,v1\n0,0,1,2,3\n"))                     // oversized row
	f.Add([]byte("x,y,v0\nleft,top,much\n"))                    // non-numeric fields
	f.Add([]byte("x,y,v0\n-1,0,1\n"))                           // negative location
	f.Add([]byte("x,y,v0\n4611686018427387905,0,1\n"))          // overflow-inducing x
	f.Add([]byte("x,y,v0\n0,0,1e309\n"))                        // float overflow to +Inf
	f.Add([]byte("x,y,v0\n0,0," + strings.Repeat("9", 400)))    // huge numeric field
	f.Add([]byte("x,y," + strings.Repeat("v,", 300) + "v\n"))   // very wide header
	f.Add([]byte("\"x\",\"y\",\"v0\"\n\"0\",\"0\",\"1.25\"\n")) // quoted fields
	f.Add([]byte(""))                                           // empty
	f.Add([]byte("x,y,t,value\n1,1,1,2.5\n1,1,1,1.5\n"))        // matrix shape with a duplicate cell
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := LoadCSV(bytes.NewReader(data), "fuzz", 0, 0)
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted dataset fails Validate: %v", err)
		}
		if d.Cx <= 0 || d.Cy <= 0 || d.Cx > MaxGridSide || d.Cy > MaxGridSide {
			t.Fatalf("accepted dataset has out-of-range grid %dx%d", d.Cx, d.Cy)
		}
		for _, s := range d.Series {
			for _, v := range s.Values {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("accepted dataset contains non-finite reading %v", v)
				}
			}
		}
	})
}

// FuzzLoadMatrixCSV covers the release-format loader the same way:
// containment under arbitrary bytes. Accepted matrices must have bounded
// dimensions and finite cells; duplicate (x,y,t) rows must be refused,
// never accumulated.
func FuzzLoadMatrixCSV(f *testing.F) {
	f.Add([]byte("x,y,t,value\n0,0,0,1.5\n1,1,1,-2\n"))  // valid, incl. negative cell
	f.Add([]byte("x,y,t,value\n1,1,1,2.5\n1,1,1,1.5\n")) // duplicate cell
	f.Add([]byte("x,y,t,value\n0,0,0,NaN\n"))            // non-finite
	f.Add([]byte("x,y,t,value\n9999999,0,0,1\n"))        // out-of-range coordinate
	f.Add([]byte("x,y,t,value\n0,0,1\n"))                // short row
	f.Add([]byte("x,y,t,value\n"))                       // header only
	f.Add([]byte(""))                                    // empty
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := LoadMatrixCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		if m.Cx <= 0 || m.Cy <= 0 || m.Ct <= 0 ||
			m.Cx > MaxGridSide || m.Cy > MaxGridSide || m.Ct > MaxGridSide {
			t.Fatalf("accepted matrix has out-of-range dimensions %dx%dx%d", m.Cx, m.Cy, m.Ct)
		}
		for _, v := range m.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted matrix contains non-finite cell %v", v)
			}
		}
	})
}
