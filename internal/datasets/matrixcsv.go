package datasets

import (
	"bufio"
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/grid"
	"repro/internal/resilience"
)

// matrixHeader is the header row of the released-matrix cell format.
var matrixHeader = []string{"x", "y", "t", "value"}

// SaveMatrixCSV writes a consumption matrix as the cell list `x,y,t,value`
// — the release format stpt-run emits and stpt-serve loads. Cells are
// written in (t, y, x) order, one row per cell.
func SaveMatrixCSV(m *grid.Matrix, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, strings.Join(matrixHeader, ",")); err != nil {
		return err
	}
	for t := 0; t < m.Ct; t++ {
		for y := 0; y < m.Cy; y++ {
			for x := 0; x < m.Cx; x++ {
				if _, err := fmt.Fprintf(bw, "%d,%d,%d,%g\n", x, y, t, m.At(x, y, t)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// SaveMatrixCSVFile writes the matrix to path atomically — temp file in
// the same directory, fsync, rename — so a crash mid-save leaves either
// the previous file or the complete new one, never a torn release that
// LoadMatrixCSV would half-read. This is the only way release files
// should reach disk.
func SaveMatrixCSVFile(ctx context.Context, path string, m *grid.Matrix) error {
	return resilience.AtomicWriteFile(ctx, path, func(w io.Writer) error {
		return SaveMatrixCSV(m, w)
	})
}

// LoadMatrixCSV reads the SaveMatrixCSV cell-list format back into a
// matrix. Dimensions are inferred as max coordinate + 1 per axis; cells
// absent from the file stay zero. A duplicate (x,y,t) cell is an error
// naming both rows: SaveMatrixCSV writes each cell exactly once, so a
// repeat means the file was corrupted or concatenated, and silently
// accumulating it would double the cell. Values may be negative (DP
// noise produces negative cells) but must be finite, and coordinates
// are bounded so a corrupt file cannot demand an absurd allocation.
func LoadMatrixCSV(r io.Reader) (*grid.Matrix, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("datasets: reading matrix CSV: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("datasets: matrix CSV needs a header and at least one cell")
	}
	if len(records[0]) != 4 {
		return nil, fmt.Errorf("datasets: matrix CSV header has %d fields, want 4 (x,y,t,value)", len(records[0]))
	}
	type cell struct {
		x, y, t int
		v       float64
	}
	cells := make([]cell, 0, len(records)-1)
	seen := make(map[[3]int]int, len(records)-1) // (x,y,t) → row number of first occurrence
	cx, cy, ct := 0, 0, 0
	for i, rec := range records[1:] {
		if len(rec) != 4 {
			return nil, fmt.Errorf("datasets: matrix row %d has %d fields, want 4", i+2, len(rec))
		}
		var c cell
		for j, dst := range []*int{&c.x, &c.y, &c.t} {
			n, err := strconv.Atoi(rec[j])
			if err != nil {
				return nil, fmt.Errorf("datasets: matrix row %d %s: %w", i+2, matrixHeader[j], err)
			}
			if n < 0 || n >= MaxGridSide {
				return nil, fmt.Errorf("datasets: matrix row %d %s=%d outside [0,%d)", i+2, matrixHeader[j], n, MaxGridSide)
			}
			*dst = n
		}
		v, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("datasets: matrix row %d value: %w", i+2, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("datasets: matrix row %d: non-finite value %q", i+2, rec[3])
		}
		c.v = v
		if first, dup := seen[[3]int{c.x, c.y, c.t}]; dup {
			return nil, fmt.Errorf("datasets: matrix row %d: duplicate cell (%d,%d,%d), first defined at row %d", i+2, c.x, c.y, c.t, first)
		}
		seen[[3]int{c.x, c.y, c.t}] = i + 2
		if c.x >= cx {
			cx = c.x + 1
		}
		if c.y >= cy {
			cy = c.y + 1
		}
		if c.t >= ct {
			ct = c.t + 1
		}
		cells = append(cells, c)
	}
	// Guard the product, not just each axis: three in-range coordinates
	// can still multiply into an allocation no release legitimately needs.
	const maxCells = 1 << 28
	if int64(cx)*int64(cy)*int64(ct) > maxCells {
		return nil, fmt.Errorf("datasets: matrix dimensions %dx%dx%d exceed %d cells", cx, cy, ct, maxCells)
	}
	m := grid.NewMatrix(cx, cy, ct)
	for _, c := range cells {
		m.AddAt(c.x, c.y, c.t, c.v)
	}
	return m, nil
}

// SniffCSV distinguishes the two on-disk CSV shapes this repo produces by
// their header row: "matrix" for the x,y,t,value cell list (stpt-run
// output) and "dataset" for the x,y,v0,v1,... household format
// (stpt-datagen output). Unknown headers report an error naming both.
func SniffCSV(header []string) (string, error) {
	if len(header) == 4 && header[0] == "x" && header[1] == "y" && header[2] == "t" && header[3] == "value" {
		return "matrix", nil
	}
	if len(header) >= 3 && header[0] == "x" && header[1] == "y" && strings.HasPrefix(header[2], "v") {
		return "dataset", nil
	}
	return "", fmt.Errorf("datasets: unrecognised CSV header %q: want x,y,t,value (matrix) or x,y,v0,... (dataset)", strings.Join(header, ","))
}
