package datasets

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/grid"
)

// TestMatrixCSVRoundTrip: Save then Load must reproduce the matrix
// exactly, including negative (DP-noised) cells.
func TestMatrixCSVRoundTrip(t *testing.T) {
	m := grid.NewMatrix(3, 2, 4)
	for i := 0; i < m.Len(); i++ {
		m.Data()[i] = float64(i)*1.5 - 7 // includes negatives
	}
	var sb strings.Builder
	if err := SaveMatrixCSV(m, &sb); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMatrixCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cx != m.Cx || got.Cy != m.Cy || got.Ct != m.Ct {
		t.Fatalf("dimensions %dx%dx%d, want %dx%dx%d", got.Cx, got.Cy, got.Ct, m.Cx, m.Cy, m.Ct)
	}
	for i := range m.Data() {
		if got.Data()[i] != m.Data()[i] {
			t.Fatalf("cell %d: %g, want %g", i, got.Data()[i], m.Data()[i])
		}
	}
}

// TestLoadMatrixCSVRejects covers the refusal paths: malformed fields,
// non-finite values, out-of-range coordinates, and dimension blowups.
func TestLoadMatrixCSVRejects(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"header-only":     "x,y,t,value\n",
		"wrong-header":    "a,b,c\n0,0,1\n",
		"short-row":       "x,y,t,value\n0,0,1\n",
		"long-row":        "x,y,t,value\n0,0,1,2,3\n",
		"bad-x":           "x,y,t,value\nleft,0,0,1\n",
		"bad-t":           "x,y,t,value\n0,0,soon,1\n",
		"negative-coord":  "x,y,t,value\n0,-1,0,1\n",
		"nan-value":       "x,y,t,value\n0,0,0,NaN\n",
		"inf-value":       "x,y,t,value\n0,0,0,+Inf\n",
		"huge-coord":      "x,y,t,value\n9999999,0,0,1\n",
		"cell-product":    "x,y,t,value\n1000000,0,0,1\n0,1000000,0,1\n0,0,1000000,1\n",
		"value-not-float": "x,y,t,value\n0,0,0,lots\n",
	}
	for name, c := range cases {
		if _, err := LoadMatrixCSV(strings.NewReader(c)); err == nil {
			t.Errorf("%s: accepted %q", name, c)
		}
	}
}

// TestLoadMatrixCSVRejectsDuplicates: SaveMatrixCSV writes each cell
// once, so a repeated (x,y,t) marks a corrupt or concatenated release;
// the error names both rows. Absent cells still load as zero.
func TestLoadMatrixCSVRejectsDuplicates(t *testing.T) {
	in := "x,y,t,value\n0,0,0,1\n1,1,1,2.5\n1,1,1,1.5\n"
	_, err := LoadMatrixCSV(strings.NewReader(in))
	if err == nil {
		t.Fatal("duplicate cell accepted")
	}
	for _, frag := range []string{"duplicate", "(1,1,1)", "row 4", "row 3"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}

	m, err := LoadMatrixCSV(strings.NewReader("x,y,t,value\n1,1,1,2.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Cx != 2 || m.Cy != 2 || m.Ct != 2 {
		t.Fatalf("dimensions %dx%dx%d, want 2x2x2", m.Cx, m.Cy, m.Ct)
	}
	if got := m.At(0, 0, 0); got != 0 {
		t.Fatalf("absent cell = %g, want 0", got)
	}
}

// TestSaveMatrixCSVFileAtomic: the file helper produces a loadable
// release, replaces an existing file in place, and leaves no temp
// debris behind on success.
func TestSaveMatrixCSVFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "release.csv")
	m := grid.NewMatrix(2, 2, 2)
	m.Set(1, 1, 1, 3.5)
	if err := SaveMatrixCSVFile(context.Background(), path, m); err != nil {
		t.Fatal(err)
	}
	m.Set(0, 0, 0, -1.25)
	if err := SaveMatrixCSVFile(context.Background(), path, m); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := LoadMatrixCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0, 0) != -1.25 || got.At(1, 1, 1) != 3.5 {
		t.Fatalf("reloaded cells %g/%g", got.At(0, 0, 0), got.At(1, 1, 1))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want just the release", len(entries))
	}
}

// TestSniffCSV distinguishes the two header shapes and refuses others.
func TestSniffCSV(t *testing.T) {
	cases := []struct {
		header []string
		want   string
		ok     bool
	}{
		{[]string{"x", "y", "t", "value"}, "matrix", true},
		{[]string{"x", "y", "v0", "v1"}, "dataset", true},
		{[]string{"x", "y", "v0"}, "dataset", true},
		{[]string{"x", "y"}, "", false},
		{[]string{"a", "b", "c", "d"}, "", false},
		{nil, "", false},
	}
	for _, c := range cases {
		got, err := SniffCSV(c.header)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("SniffCSV(%v) = %q, %v; want %q, ok=%v", c.header, got, err, c.want, c.ok)
		}
	}
}
