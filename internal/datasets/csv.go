package datasets

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/timeseries"
)

// MaxGridSide bounds the spatial coordinates any loader accepts. Real
// deployments use sides of at most a few thousand cells; the cap exists
// so hostile or corrupt inputs cannot drive the power-of-two side
// inference into integer overflow or absurd allocations.
const MaxGridSide = 1 << 20

// SaveCSV writes a dataset as CSV: a header row `x,y,v0,v1,...`, then one
// row per household.
func SaveCSV(d *timeseries.Dataset, w io.Writer) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("datasets: %w", err)
	}
	cw := csv.NewWriter(w)
	header := []string{"x", "y"}
	for t := 0; t < d.T(); t++ {
		header = append(header, "v"+strconv.Itoa(t))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 0, 2+d.T())
	for _, s := range d.Series {
		row = row[:0]
		row = append(row, strconv.Itoa(s.Location.X), strconv.Itoa(s.Location.Y))
		for _, v := range s.Values {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadCSV reads the SaveCSV format. Grid dimensions are inferred as the
// smallest power-of-two square covering all locations unless cx/cy are
// positive, in which case they are used directly.
func LoadCSV(r io.Reader, name string, cx, cy int) (*timeseries.Dataset, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("datasets: reading CSV: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("datasets: CSV needs a header and at least one row")
	}
	d := &timeseries.Dataset{Name: name}
	T := len(records[0]) - 2
	if T <= 0 {
		return nil, fmt.Errorf("datasets: CSV header has no value columns")
	}
	maxX, maxY := 0, 0
	for i, rec := range records[1:] {
		if len(rec) != T+2 {
			return nil, fmt.Errorf("datasets: row %d has %d fields, want %d", i+2, len(rec), T+2)
		}
		x, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("datasets: row %d x: %w", i+2, err)
		}
		y, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("datasets: row %d y: %w", i+2, err)
		}
		if x < 0 || y < 0 {
			return nil, fmt.Errorf("datasets: row %d has negative location (%d,%d)", i+2, x, y)
		}
		// Locations also bound the inferred grid side below; an absurd
		// coordinate would overflow the power-of-two search (or demand a
		// multi-exabyte matrix), so refuse it at the boundary.
		if x >= MaxGridSide || y >= MaxGridSide {
			return nil, fmt.Errorf("datasets: row %d location (%d,%d) beyond supported grid side %d", i+2, x, y, MaxGridSide)
		}
		if x > maxX {
			maxX = x
		}
		if y > maxY {
			maxY = y
		}
		vals := make([]float64, T)
		for j := 0; j < T; j++ {
			v, err := strconv.ParseFloat(rec[2+j], 64)
			if err != nil {
				return nil, fmt.Errorf("datasets: row %d value %d: %w", i+2, j, err)
			}
			// NaN/Inf readings would silently poison every downstream
			// aggregate; reject them at the boundary.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("datasets: row %d value %d: non-finite reading %q", i+2, j, rec[2+j])
			}
			vals[j] = v
		}
		d.Series = append(d.Series, &timeseries.Series{
			Location: timeseries.Location{X: x, Y: y}, Values: vals,
		})
	}
	if cx > 0 && cy > 0 {
		d.Cx, d.Cy = cx, cy
	} else {
		side := 1
		for side <= maxX || side <= maxY {
			side <<= 1
		}
		d.Cx, d.Cy = side, side
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("datasets: %w", err)
	}
	return d, nil
}
