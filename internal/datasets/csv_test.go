package datasets

import (
	"strings"
	"testing"
)

// TestLoadCSVRejectsNonFinite: NaN/Inf parse as valid float64s but would
// poison every downstream aggregate, so the loader must reject them.
func TestLoadCSVRejectsNonFinite(t *testing.T) {
	cases := map[string]string{
		"nan":      "x,y,v0,v1\n0,0,1.5,NaN\n",
		"plus-inf": "x,y,v0,v1\n0,0,+Inf,2\n",
		"neg-inf":  "x,y,v0,v1\n0,0,1,-Inf\n",
	}
	for name, c := range cases {
		_, err := LoadCSV(strings.NewReader(c), "t", 0, 0)
		if err == nil {
			t.Errorf("%s: accepted non-finite reading", name)
			continue
		}
		if !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("%s: error %q does not name the problem", name, err)
		}
	}
}

// TestLoadCSVRejectsTruncatedRows: rows shorter or longer than the header
// must fail with the offending row identified.
func TestLoadCSVRejectsTruncatedRows(t *testing.T) {
	cases := []string{
		"x,y,v0,v1\n0,0,1\n",          // one value missing
		"x,y,v0,v1\n0,0\n",            // all values missing
		"x,y,v0,v1\n0,0,1,2,3\n",      // extra value
		"x,y,v0,v1\n0,0,1,2\n1,1,3\n", // second row truncated
	}
	for i, c := range cases {
		if _, err := LoadCSV(strings.NewReader(c), "t", 0, 0); err == nil {
			t.Errorf("case %d should fail: %q", i, c)
		}
	}
}

// TestLoadCSVRejectsNonNumeric covers garbage in each column kind.
func TestLoadCSVRejectsNonNumeric(t *testing.T) {
	cases := map[string]string{
		"x":       "x,y,v0\nleft,0,1\n",
		"y":       "x,y,v0\n0,top,1\n",
		"value":   "x,y,v0\n0,0,lots\n",
		"float-x": "x,y,v0\n1.5,0,1\n", // locations are integers
	}
	for name, c := range cases {
		if _, err := LoadCSV(strings.NewReader(c), "t", 0, 0); err == nil {
			t.Errorf("%s: accepted non-numeric field: %q", name, c)
		}
	}
}

// TestLoadCSVRejectsOutOfGrid: with explicit dimensions, locations beyond
// them must fail validation instead of silently indexing out of range.
func TestLoadCSVRejectsOutOfGrid(t *testing.T) {
	csv := "x,y,v0\n0,0,1\n7,3,2\n"
	if _, err := LoadCSV(strings.NewReader(csv), "t", 4, 4); err == nil {
		t.Fatal("accepted location (7,3) on a 4x4 grid")
	}
	// The same rows fit once the grid is inferred.
	d, err := LoadCSV(strings.NewReader(csv), "t", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cx != 8 || d.Cy != 8 {
		t.Fatalf("inferred grid %dx%d, want 8x8", d.Cx, d.Cy)
	}
}

// TestLoadCSVRejectsEmpty covers empty and header-only inputs.
func TestLoadCSVRejectsEmpty(t *testing.T) {
	for i, c := range []string{"", "\n", "x,y,v0\n"} {
		if _, err := LoadCSV(strings.NewReader(c), "t", 0, 0); err == nil {
			t.Errorf("case %d: accepted empty input %q", i, c)
		}
	}
}

// TestSaveCSVRejectsInvalid: the writer validates before emitting so a
// broken dataset cannot round-trip into a broken file.
func TestSaveCSVRejectsInvalid(t *testing.T) {
	d := CA.Generate(Uniform, 4, 4, 3, 1)
	d.Series[0].Location.X = 99
	if err := SaveCSV(d, &strings.Builder{}); err == nil {
		t.Fatal("saved a dataset with an out-of-grid location")
	}
}
