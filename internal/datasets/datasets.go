// Package datasets synthesises electricity-consumption datasets calibrated
// to the summary statistics the paper publishes (Table 2, Figure 9) for
// CER, CA, MI and TX, and places households on the grid under the three
// spatial layouts of Section 5.1 (Uniform, Normal, and an LA-like
// population histogram standing in for the proprietary Veraset data).
//
// The real datasets are access-gated; these generators reproduce the
// properties the DP mechanisms are sensitive to — per-reading scale,
// heavy-tailed spikiness (std ≈ 2-3x mean), hard maxima, diurnal/weekly
// cycles and spatially clustered placement — so the relative ordering of
// algorithms in the evaluation carries over.
package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/timeseries"
)

// Spec captures one dataset's published statistics.
type Spec struct {
	Name       string
	Households int
	MeanKWh    float64 // average hourly consumption
	StdKWh     float64 // standard deviation of hourly consumption
	MaxKWh     float64 // maximum hourly consumption
	ClipFactor float64 // sensitivity clipping factor used in experiments
}

// The four specs of Table 2.
var (
	CER = Spec{Name: "CER", Households: 5000, MeanKWh: 0.61, StdKWh: 1.24, MaxKWh: 19.62, ClipFactor: 1.85}
	CA  = Spec{Name: "CA", Households: 250, MeanKWh: 0.38, StdKWh: 1.13, MaxKWh: 33.54, ClipFactor: 1.51}
	MI  = Spec{Name: "MI", Households: 250, MeanKWh: 0.48, StdKWh: 1.22, MaxKWh: 49.50, ClipFactor: 1.7}
	TX  = Spec{Name: "TX", Households: 250, MeanKWh: 0.55, StdKWh: 1.63, MaxKWh: 68.86, ClipFactor: 2.18}
)

// All returns the four paper datasets in publication order.
func All() []Spec { return []Spec{CER, CA, MI, TX} }

// ByName finds a spec by its (case-sensitive) name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

// Layout selects the household spatial distribution.
type Layout int

const (
	// Uniform scatters households uniformly over the grid.
	Uniform Layout = iota
	// Normal clusters households around a random centre with standard
	// deviation one third of the grid side (Section 5.1).
	Normal
	// LosAngeles emulates the Veraset-derived LA population histogram: a
	// dominant downtown mode, several secondary clusters, and a sparse
	// uniform background.
	LosAngeles
)

// String names the layout.
func (l Layout) String() string {
	switch l {
	case Uniform:
		return "uniform"
	case Normal:
		return "normal"
	case LosAngeles:
		return "losangeles"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// ParseLayout converts a name into a Layout.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "normal":
		return Normal, nil
	case "losangeles", "la":
		return LosAngeles, nil
	}
	return 0, fmt.Errorf("datasets: unknown layout %q", s)
}

// Generate produces hourly readings for T timestamps on a cx x cy grid.
// Readings start on a Monday at 00:00 so weekday-dependent patterns
// (Figure 9) are well defined.
func (s Spec) Generate(layout Layout, cx, cy, T int, seed int64) *timeseries.Dataset {
	if cx <= 0 || cy <= 0 || T <= 0 || s.Households <= 0 {
		panic(fmt.Sprintf("datasets: invalid generation parameters cx=%d cy=%d T=%d n=%d", cx, cy, T, s.Households))
	}
	rng := rand.New(rand.NewSource(seed))
	locs := placeHouseholds(rng, layout, cx, cy, s.Households)

	// Hourly consumption model, matched to the statistical character of
	// real smart-meter data rather than a clean harmonic:
	//
	//   x_t = mean * diurnal(hour - phase) * weekly(day) * householdScale
	//         * amplitudeWalk_t * event_t * exp(AR1_t)
	//
	// Households have individual peak phases (work schedules differ),
	// deviations persist across hours (AR(1), people stay home), usage
	// has day-scale events (laundry days, guests, vacations), and the
	// lognormal innovation is calibrated so the marginal coefficient of
	// variation matches Std/Mean from Table 2. Everything is clipped at
	// the published maximum. The wide, irregular spectrum this produces is
	// what defeats low-coefficient transform baselines on real data.
	cv := s.StdKWh / s.MeanKWh
	sigmaMarginal := math.Sqrt(math.Log(1 + cv*cv))
	const arRho = 0.7
	// AR(1) innovations with stationary std sigmaMarginal.
	sigmaInnov := sigmaMarginal * math.Sqrt(1-arRho*arRho)

	d := &timeseries.Dataset{Name: s.Name, Cx: cx, Cy: cy}
	for i := 0; i < s.Households; i++ {
		// Household base scale: lognormal across households, mean 1.
		hs := math.Exp(rng.NormFloat64()*0.4 - 0.08)
		phase := rng.Intn(7) - 3 // peak-hour offset in [-3, 3]
		vals := make([]float64, T)
		ar := rng.NormFloat64() * sigmaMarginal
		ampWalk := 1.0
		eventFactor := 1.0
		eventLeft := 0
		for t := 0; t < T; t++ {
			hour := t % 24
			day := (t / 24) % 7
			if hour == 0 {
				// Day boundary: amplitude wanders, events start/stop.
				ampWalk *= math.Exp(rng.NormFloat64() * 0.15)
				ampWalk = mat.Clamp(ampWalk, 0.4, 2.5)
				if eventLeft > 0 {
					eventLeft--
					if eventLeft == 0 {
						eventFactor = 1
					}
				} else if rng.Float64() < 0.08 {
					eventLeft = 1 + rng.Intn(3)
					if rng.Float64() < 0.5 {
						eventFactor = 2 + rng.Float64()*2 // high-usage days
					} else {
						eventFactor = 0.15 // away days
					}
				}
			}
			ar = arRho*ar + rng.NormFloat64()*sigmaInnov
			base := s.MeanKWh * diurnal(((hour-phase)%24+24)%24) * weekly(day) * hs
			v := base * ampWalk * eventFactor * math.Exp(ar-sigmaMarginal*sigmaMarginal/2)
			if v > s.MaxKWh {
				v = s.MaxKWh
			}
			vals[t] = v
		}
		d.Series = append(d.Series, &timeseries.Series{Location: locs[i], Values: vals})
	}
	return d
}

// GenerateDaily produces day-granularity readings — the granularity the
// paper releases at (Section 3.1) — by generating the hourly model and
// summing each household's 24-hour blocks.
func (s Spec) GenerateDaily(layout Layout, cx, cy, days int, seed int64) *timeseries.Dataset {
	hourly := s.Generate(layout, cx, cy, days*24, seed)
	d := &timeseries.Dataset{Name: hourly.Name, Cx: cx, Cy: cy}
	for _, h := range hourly.Series {
		vals := make([]float64, days)
		for t, v := range h.Values {
			vals[t/24] += v
		}
		d.Series = append(d.Series, &timeseries.Series{Location: h.Location, Values: vals})
	}
	return d
}

// DailyClip returns the sensitivity clipping factor for day-granularity
// readings: the hourly clip scaled to a day, bounding one household's
// daily contribution the way ClipFactor bounds its hourly one.
func (s Spec) DailyClip() float64 { return s.ClipFactor * 24 }

// diurnal is a double-peaked residential daily profile (morning and
// evening peaks, overnight trough), normalised to mean 1 over 24 hours.
func diurnal(hour int) float64 {
	h := float64(hour)
	morning := math.Exp(-(h - 8) * (h - 8) / 8)
	evening := 1.6 * math.Exp(-(h-19)*(h-19)/10)
	raw := 0.45 + morning + evening
	return raw / 1.02463 // mean of raw over the 24 hours
}

// weekly modulates by day of week (0 = Monday): weekends run higher for
// residential consumption, reproducing the Figure 9 shape.
func weekly(day int) float64 {
	switch day {
	case 5: // Saturday
		return 1.12
	case 6: // Sunday
		return 1.15
	default:
		return 0.97
	}
}

// placeHouseholds draws grid locations under the layout.
func placeHouseholds(rng *rand.Rand, layout Layout, cx, cy, n int) []timeseries.Location {
	locs := make([]timeseries.Location, n)
	switch layout {
	case Uniform:
		for i := range locs {
			locs[i] = timeseries.Location{X: rng.Intn(cx), Y: rng.Intn(cy)}
		}
	case Normal:
		cxf := rng.Float64() * float64(cx)
		cyf := rng.Float64() * float64(cy)
		sx := float64(cx) / 3
		sy := float64(cy) / 3
		for i := range locs {
			locs[i] = sampleInGrid(rng, cxf, cyf, sx, sy, cx, cy)
		}
	case LosAngeles:
		// Fixed mixture emulating the LA density: downtown (45%), four
		// secondary clusters (40%), diffuse background (15%).
		type mode struct{ fx, fy, sx, sy, w float64 }
		modes := []mode{
			{0.55, 0.45, 0.06, 0.06, 0.45}, // downtown core
			{0.30, 0.65, 0.08, 0.07, 0.12}, // westside
			{0.70, 0.70, 0.09, 0.08, 0.10}, // valley
			{0.40, 0.25, 0.07, 0.08, 0.10}, // south bay
			{0.75, 0.30, 0.08, 0.07, 0.08}, // east
		}
		for i := range locs {
			u := rng.Float64()
			placed := false
			for _, m := range modes {
				if u < m.w {
					locs[i] = sampleInGrid(rng,
						m.fx*float64(cx), m.fy*float64(cy),
						m.sx*float64(cx), m.sy*float64(cy), cx, cy)
					placed = true
					break
				}
				u -= m.w
			}
			if !placed {
				locs[i] = timeseries.Location{X: rng.Intn(cx), Y: rng.Intn(cy)}
			}
		}
	default:
		panic(fmt.Sprintf("datasets: unknown layout %v", layout))
	}
	return locs
}

// sampleInGrid draws from N((mx,my), diag(sx,sy)²) by rejection so border
// cells do not accumulate the clipped tail mass; after a bounded number of
// attempts it falls back to clamping.
func sampleInGrid(rng *rand.Rand, mx, my, sx, sy float64, cx, cy int) timeseries.Location {
	for attempt := 0; attempt < 32; attempt++ {
		x := rng.NormFloat64()*sx + mx
		y := rng.NormFloat64()*sy + my
		if x >= 0 && x < float64(cx) && y >= 0 && y < float64(cy) {
			return timeseries.Location{X: int(x), Y: int(y)}
		}
	}
	return clampLoc(rng.NormFloat64()*sx+mx, rng.NormFloat64()*sy+my, cx, cy)
}

func clampLoc(x, y float64, cx, cy int) timeseries.Location {
	xi := int(math.Floor(x))
	yi := int(math.Floor(y))
	if xi < 0 {
		xi = 0
	}
	if xi >= cx {
		xi = cx - 1
	}
	if yi < 0 {
		yi = 0
	}
	if yi >= cy {
		yi = cy - 1
	}
	return timeseries.Location{X: xi, Y: yi}
}

// Stats summarises a dataset the way Table 2 does.
type Stats struct {
	Households     int
	Mean, Std, Max float64
}

// Summarize computes Table 2-style statistics.
func Summarize(d *timeseries.Dataset) Stats {
	var (
		n    int
		sum  float64
		sums float64
		max  float64
	)
	for _, s := range d.Series {
		for _, v := range s.Values {
			n++
			sum += v
			sums += v * v
			if v > max {
				max = v
			}
		}
	}
	mean := sum / float64(n)
	variance := sums/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Stats{Households: len(d.Series), Mean: mean, Std: math.Sqrt(variance), Max: max}
}

// WeekdayTotals returns the total consumption per weekday (0 = Monday),
// the Figure 9 statistic, assuming hourly readings starting Monday 00:00.
func WeekdayTotals(d *timeseries.Dataset) [7]float64 {
	var out [7]float64
	for _, s := range d.Series {
		for t, v := range s.Values {
			out[(t/24)%7] += v
		}
	}
	return out
}
