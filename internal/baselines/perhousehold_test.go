package baselines

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/timeseries"
)

// singleHouseholdInput places exactly one household so the per-household
// semantics of the transform baselines are directly observable.
func singleHouseholdInput(T int) Input {
	vals := make([]float64, T)
	for t := range vals {
		vals[t] = 1 + 0.5*math.Sin(2*math.Pi*float64(t)/7)
	}
	d := &timeseries.Dataset{Cx: 4, Cy: 4, Series: []*timeseries.Series{
		{Location: timeseries.Location{X: 2, Y: 1}, Values: vals},
	}}
	return Input{Dataset: d, TTrain: 0, CellSensitivity: 3}
}

// releaseMassOutsideCell sums the released mass in cells with no household.
func releaseMassOutsideCell(rel *grid.Matrix, x, y int) float64 {
	var outside float64
	for t := 0; t < rel.Ct; t++ {
		for yy := 0; yy < rel.Cy; yy++ {
			for xx := 0; xx < rel.Cx; xx++ {
				if xx == x && yy == y {
					continue
				}
				outside += rel.At(xx, yy, t)
			}
		}
	}
	return outside
}

func TestFourierReleasesOnlyAtHouseholdCells(t *testing.T) {
	in := singleHouseholdInput(28)
	rel, err := NewFourier(10).Release(in, 1e5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := releaseMassOutsideCell(rel, 2, 1); got != 0 {
		t.Fatalf("per-household Fourier leaked %v outside the household's cell", got)
	}
	// With an enormous budget the household's own series reconstructs
	// accurately up to truncation of the higher harmonics.
	truth := in.Truth()
	var err1, mass float64
	for tt := 0; tt < rel.Ct; tt++ {
		err1 += math.Abs(rel.At(2, 1, tt) - truth.At(2, 1, tt))
		mass += truth.At(2, 1, tt)
	}
	if err1 > 0.35*mass {
		t.Fatalf("reconstruction error %v too large vs mass %v", err1, mass)
	}
}

func TestWaveletReleasesOnlyAtHouseholdCells(t *testing.T) {
	in := singleHouseholdInput(28)
	rel, err := NewWavelet(10).Release(in, 1e5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := releaseMassOutsideCell(rel, 2, 1); got != 0 {
		t.Fatalf("per-household Wavelet leaked %v outside the household's cell", got)
	}
}

func TestTransformBaselinesClipBeforeTransform(t *testing.T) {
	// A reading far above CellSensitivity must influence the release by at
	// most the clip ceiling — verify via two inputs that differ only above
	// the clip, producing identical releases for the same seed.
	mk := func(spike float64) Input {
		vals := make([]float64, 16)
		for t := range vals {
			vals[t] = 1
		}
		vals[3] = spike
		d := &timeseries.Dataset{Cx: 2, Cy: 2, Series: []*timeseries.Series{
			{Location: timeseries.Location{X: 0, Y: 0}, Values: vals},
		}}
		return Input{Dataset: d, TTrain: 0, CellSensitivity: 2}
	}
	for _, alg := range []Algorithm{NewFourier(5), NewWavelet(5)} {
		a, err := alg.Release(mk(50), 10, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := alg.Release(mk(500), 10, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Data() {
			if a.Data()[i] != b.Data()[i] {
				t.Fatalf("%s: clipping not applied before transform", alg.Name())
			}
		}
	}
}

func TestTransformBaselinesRejectEmptyHorizon(t *testing.T) {
	in := singleHouseholdInput(10)
	in.TTrain = 10
	if _, err := NewFourier(5).Release(in, 1, 1); err == nil {
		t.Fatal("fourier should reject empty horizon")
	}
	if _, err := NewWavelet(5).Release(in, 1, 1); err == nil {
		t.Fatal("wavelet should reject empty horizon")
	}
}
