package baselines

import (
	"math"
	"math/rand"

	"repro/internal/dp"
	"repro/internal/grid"
)

// HTF adapts the Homogeneous Tree Framework of Shaham et al. (SIGSPATIAL
// 2021) — the authors' prior work the paper builds on — to the 3-D
// consumption matrix: the volume is recursively split by axis-aligned
// cuts chosen to balance mass (a noisy-median proxy for HTF's
// homogeneity objective), and the resulting leaf boxes are released with
// Laplace-sanitised sums spread uniformly. Unlike STPT it needs no
// learned pattern: the partition structure itself is bought with a slice
// of the budget.
type HTF struct {
	// MaxDepth bounds the splitting recursion (up to 2^MaxDepth leaves).
	// Zero defaults to 9 (≤512 leaves).
	MaxDepth int
	// PartitionShare is the fraction of ε spent on split decisions; the
	// rest releases leaf sums. Zero defaults to 0.3 (the HTF paper's
	// guidance of a minority share for structure).
	PartitionShare float64
}

// NewHTF returns the baseline with literature defaults.
func NewHTF() *HTF { return &HTF{MaxDepth: 9, PartitionShare: 0.3} }

// Name implements Algorithm.
func (*HTF) Name() string { return "htf" }

type htfBox struct {
	x0, x1, y0, y1, t0, t1 int // inclusive
}

func (b htfBox) cells() int {
	return (b.x1 - b.x0 + 1) * (b.y1 - b.y0 + 1) * (b.t1 - b.t0 + 1)
}

// Release implements Algorithm.
func (h *HTF) Release(in Input, epsilon float64, seed int64) (*grid.Matrix, error) {
	truth := in.Truth()
	depth := h.MaxDepth
	if depth <= 0 {
		depth = 9
	}
	share := h.PartitionShare
	if share <= 0 || share >= 1 {
		share = 0.3
	}
	lap := dp.NewLaplace(rand.New(rand.NewSource(seed)))
	epsSplit := share * epsilon
	epsData := epsilon - epsSplit
	ps := grid.NewPrefixSum(truth)

	// Recursive mass-balancing splits. Each level's decisions touch
	// disjoint boxes (parallel composition), so every level spends
	// epsSplit/depth; the split statistic is a box-half sum with
	// sensitivity = one user's pillar mass inside the box.
	perLevel := epsSplit / float64(depth)
	boxes := []htfBox{{0, truth.Cx - 1, 0, truth.Cy - 1, 0, truth.Ct - 1}}
	for level := 0; level < depth; level++ {
		var next []htfBox
		for _, b := range boxes {
			child1, child2, ok := h.split(b, ps, lap, perLevel, in.CellSensitivity)
			if !ok {
				next = append(next, b)
				continue
			}
			next = append(next, child1, child2)
		}
		boxes = next
	}

	// Release leaf sums with Theorem-8-style allocation over the leaves'
	// pillar sensitivities.
	sens := make([]float64, len(boxes))
	for i, b := range boxes {
		sens[i] = float64(b.t1-b.t0+1) * in.CellSensitivity
	}
	budgets := dp.AllocateOptimal(sens, epsData)
	out := grid.NewMatrix(truth.Cx, truth.Cy, truth.Ct)
	for i, b := range boxes {
		q := grid.Query{X0: b.x0, X1: b.x1, Y0: b.y0, Y1: b.y1, T0: b.t0, T1: b.t1}
		noisy := ps.RangeSum(q) + lap.Sample(dp.Scale(sens[i], budgets[i]))
		val := noisy / float64(b.cells())
		if val < 0 {
			val = 0
		}
		for t := b.t0; t <= b.t1; t++ {
			for y := b.y0; y <= b.y1; y++ {
				for x := b.x0; x <= b.x1; x++ {
					out.Set(x, y, t, val)
				}
			}
		}
	}
	return out, nil
}

// split cuts the box on its longest axis at the noisy mass median.
// It returns ok=false when the box is a single cell.
func (h *HTF) split(b htfBox, ps *grid.PrefixSum, lap *dp.Laplace, eps, clip float64) (htfBox, htfBox, bool) {
	dx, dy, dt := b.x1-b.x0, b.y1-b.y0, b.t1-b.t0
	if dx == 0 && dy == 0 && dt == 0 {
		return htfBox{}, htfBox{}, false
	}
	// Sensitivity of a half-box sum: one user's pillar inside the box.
	sens := float64(dt+1) * clip
	half := func(q grid.Query) float64 {
		return ps.RangeSum(q) + lap.Sample(dp.Scale(sens, eps))
	}
	total := half(grid.Query{X0: b.x0, X1: b.x1, Y0: b.y0, Y1: b.y1, T0: b.t0, T1: b.t1})

	type axis struct {
		length int
		cut    func(at int) (htfBox, htfBox)
		sum    func(at int) float64
	}
	axes := []axis{
		{dx, func(at int) (htfBox, htfBox) {
			return htfBox{b.x0, at, b.y0, b.y1, b.t0, b.t1}, htfBox{at + 1, b.x1, b.y0, b.y1, b.t0, b.t1}
		}, func(at int) float64 {
			return half(grid.Query{X0: b.x0, X1: at, Y0: b.y0, Y1: b.y1, T0: b.t0, T1: b.t1})
		}},
		{dy, func(at int) (htfBox, htfBox) {
			return htfBox{b.x0, b.x1, b.y0, at, b.t0, b.t1}, htfBox{b.x0, b.x1, at + 1, b.y1, b.t0, b.t1}
		}, func(at int) float64 {
			return half(grid.Query{X0: b.x0, X1: b.x1, Y0: b.y0, Y1: at, T0: b.t0, T1: b.t1})
		}},
		{dt, func(at int) (htfBox, htfBox) {
			return htfBox{b.x0, b.x1, b.y0, b.y1, b.t0, at}, htfBox{b.x0, b.x1, b.y0, b.y1, at + 1, b.t1}
		}, func(at int) float64 {
			return half(grid.Query{X0: b.x0, X1: b.x1, Y0: b.y0, Y1: b.y1, T0: b.t0, T1: at})
		}},
	}
	// Longest axis wins; starts at the axis' low coordinate.
	best := 0
	for i := 1; i < 3; i++ {
		if axes[i].length > axes[best].length {
			best = i
		}
	}
	a := axes[best]
	var lo int
	switch best {
	case 0:
		lo = b.x0
	case 1:
		lo = b.y0
	default:
		lo = b.t0
	}
	// Binary search the cut whose noisy left mass is closest to half.
	target := total / 2
	bestAt, bestDiff := lo, math.Inf(1)
	loI, hiI := lo, lo+a.length-1
	for loI <= hiI {
		mid := (loI + hiI) / 2
		left := a.sum(mid)
		if d := math.Abs(left - target); d < bestDiff {
			bestDiff = d
			bestAt = mid
		}
		if left < target {
			loI = mid + 1
		} else {
			hiI = mid - 1
		}
	}
	c1, c2 := a.cut(bestAt)
	return c1, c2, true
}
