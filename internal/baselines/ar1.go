package baselines

import (
	"math"
	"math/rand"

	"repro/internal/dp"
	"repro/internal/grid"
)

// AR1 implements the correlated-release approach of Zhang, Khalili & Liu
// (ACM TOPS 2022), which the paper's related work surveys: temporal
// correlations are modelled as a first-order autoregressive process, and
// each released value is the Bayesian combination of the AR(1) prediction
// from the previous release with the fresh Laplace-perturbed observation.
// Unlike FAST it releases every timestamp (no sampling), relying on the
// correlation model to filter noise; the per-timestamp budget is ε/T and
// disjoint pillars compose in parallel.
type AR1 struct {
	// Rho is the assumed autoregressive coefficient of the underlying
	// series; the posterior weight adapts to it. Zero defaults to 0.9
	// (strong day-to-day persistence).
	Rho float64
}

// NewAR1 returns the baseline with the default persistence coefficient.
func NewAR1() *AR1 { return &AR1{Rho: 0.9} }

// Name implements Algorithm.
func (*AR1) Name() string { return "ar1" }

// Release implements Algorithm.
func (a *AR1) Release(in Input, epsilon float64, seed int64) (*grid.Matrix, error) {
	truth := in.Truth()
	rho := a.Rho
	if rho <= 0 || rho >= 1 {
		rho = 0.9
	}
	lap := dp.NewLaplace(rand.New(rand.NewSource(seed)))
	T := truth.Ct
	perStep := epsilon / float64(T)
	b := dp.Scale(in.CellSensitivity, perStep)
	noiseVar := 2 * b * b
	out := grid.NewMatrix(truth.Cx, truth.Cy, T)
	for y := 0; y < truth.Cy; y++ {
		for x := 0; x < truth.Cx; x++ {
			series := truth.Pillar(x, y)
			// Process variance estimated from the noisy first differences
			// (post-processing of the DP observations).
			noisy := make([]float64, T)
			for t := 0; t < T; t++ {
				noisy[t] = series[t] + lap.Sample(b)
			}
			var diffVar float64
			for t := 1; t < T; t++ {
				d := noisy[t] - rho*noisy[t-1]
				diffVar += d * d
			}
			if T > 1 {
				diffVar /= float64(T - 1)
			}
			processVar := math.Max(1e-9, diffVar-(1+rho*rho)*noiseVar)

			// Forward pass: posterior mean of x_t given the AR(1) prior
			// from the previous estimate and the fresh noisy observation.
			est := noisy[0]
			estVar := noiseVar
			out.Set(x, y, 0, math.Max(0, est))
			for t := 1; t < T; t++ {
				priorMean := rho * est
				priorVar := rho*rho*estVar + processVar
				k := priorVar / (priorVar + noiseVar)
				est = priorMean + k*(noisy[t]-priorMean)
				estVar = (1 - k) * priorVar
				out.Set(x, y, t, math.Max(0, est))
			}
		}
	}
	return out, nil
}
