package baselines

import (
	"math"
	"math/rand"

	"repro/internal/dp"
	"repro/internal/grid"
)

// AdaptiveGrid adapts Qardaji, Yang & Li's adaptive-grid method (ICDE
// 2013), which the paper's related work cites for granularity selection:
// instead of releasing every cell, the spatial domain is coarsened to an
// m x m grid with m chosen from the budget and the (noisily estimated)
// total mass, each coarse region's series is released with per-timestamp
// Laplace noise, and the coarse values are spread uniformly over their
// member cells. Larger budgets or denser data yield finer grids.
type AdaptiveGrid struct {
	// C is the calibration constant of the m = sqrt(N·ε/c)/2 rule;
	// zero defaults to the literature's c = 10.
	C float64
}

// NewAdaptiveGrid returns the baseline with the standard calibration.
func NewAdaptiveGrid() *AdaptiveGrid { return &AdaptiveGrid{C: 10} }

// Name implements Algorithm.
func (*AdaptiveGrid) Name() string { return "agrid" }

// Release implements Algorithm.
func (g *AdaptiveGrid) Release(in Input, epsilon float64, seed int64) (*grid.Matrix, error) {
	truth := in.Truth()
	lap := dp.NewLaplace(rand.New(rand.NewSource(seed)))
	c := g.C
	if c <= 0 {
		c = 10
	}
	T := truth.Ct

	// Spend 10% of the budget estimating the population scale that drives
	// the granularity rule; 90% releases the coarse series.
	epsScale := 0.1 * epsilon
	epsRelease := epsilon - epsScale
	// Sensitivity of the total-mass probe: one household's whole series.
	mass := truth.Total() + lap.Sample(dp.Scale(in.CellSensitivity*float64(T), epsScale))
	units := math.Max(1, mass/(in.CellSensitivity*float64(T))) // ≈ households
	m := int(math.Sqrt(units*epsRelease/c) / 2)
	if m < 1 {
		m = 1
	}
	if m > truth.Cx {
		m = truth.Cx
	}
	if m > truth.Cy {
		m = truth.Cy
	}

	// Coarse regions: m x m tiling (ceiling block sizes cover the grid).
	bw := (truth.Cx + m - 1) / m
	bh := (truth.Cy + m - 1) / m
	perStep := epsRelease / float64(T)
	scale := dp.Scale(in.CellSensitivity, perStep)
	out := grid.NewMatrix(truth.Cx, truth.Cy, T)
	for by := 0; by < m; by++ {
		for bx := 0; bx < m; bx++ {
			x0, y0 := bx*bw, by*bh
			x1, y1 := min(x0+bw, truth.Cx), min(y0+bh, truth.Cy)
			if x0 >= x1 || y0 >= y1 {
				continue
			}
			cells := float64((x1 - x0) * (y1 - y0))
			for t := 0; t < T; t++ {
				var sum float64
				for y := y0; y < y1; y++ {
					for x := x0; x < x1; x++ {
						sum += truth.At(x, y, t)
					}
				}
				share := (sum + lap.Sample(scale)) / cells
				if share < 0 {
					share = 0
				}
				for y := y0; y < y1; y++ {
					for x := x0; x < x1; x++ {
						out.Set(x, y, t, share)
					}
				}
			}
		}
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
