package baselines

import (
	"math/rand"

	"repro/internal/dp"
	"repro/internal/grid"
)

// Identity is the Section 3.3 strategy: independent Laplace noise on every
// cell, with the budget split evenly over time slices (sequential
// composition) and reused across cells within a slice (parallel
// composition).
type Identity struct{}

// NewIdentity returns the Identity baseline.
func NewIdentity() *Identity { return &Identity{} }

// Name implements Algorithm.
func (*Identity) Name() string { return "identity" }

// Release implements Algorithm.
func (*Identity) Release(in Input, epsilon float64, seed int64) (*grid.Matrix, error) {
	truth := in.Truth()
	lap := dp.NewLaplace(rand.New(rand.NewSource(seed)))
	perSlice := epsilon / float64(truth.Ct)
	scale := dp.Scale(in.CellSensitivity, perSlice)
	out := truth.Clone()
	data := out.Data()
	for i := range data {
		data[i] += lap.Sample(scale)
	}
	clampNonNegative(out)
	return out, nil
}
