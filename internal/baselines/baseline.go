// Package baselines implements the six comparison algorithms of Section 5:
// Identity (per-cell Laplace), FAST (Kalman-filtered adaptive sampling),
// the Fourier perturbation algorithm FPA-k, the Haar wavelet perturbation
// algorithm, LGAN-DP (an LSTM GAN with a noisy objective) and WPO
// (event-level Laplace plus convex regression). All of them sanitise the
// released horizon of the consumption matrix under user-level privacy: the
// total budget is divided over the time axis (sequential composition),
// while disjoint spatial cells share each slice's budget (parallel
// composition, Theorem 5).
package baselines

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/grid"
	"repro/internal/resilience"
	"repro/internal/timeseries"
)

// Input bundles what every baseline consumes: the dataset, the train/release
// split and the per-cell sensitivity bound.
type Input struct {
	Dataset *timeseries.Dataset
	// TTrain readings are a non-released prefix (kept for algorithms that
	// want history); the release covers [TTrain, T).
	TTrain int
	// CellSensitivity bounds one household's contribution to one cell at
	// one timestamp (the clipped maximum reading).
	CellSensitivity float64
}

// Truth returns the non-private consumption matrix over the horizon.
func (in Input) Truth() *grid.Matrix {
	d := in.Dataset
	horizon := d.T() - in.TTrain
	if horizon <= 0 {
		panic(fmt.Sprintf("baselines: no horizon (T=%d, TTrain=%d)", d.T(), in.TTrain))
	}
	m := grid.NewMatrix(d.Cx, d.Cy, horizon)
	for _, s := range d.Series {
		for t := in.TTrain; t < d.T(); t++ {
			m.AddAt(s.Location.X, s.Location.Y, t-in.TTrain, s.Values[t])
		}
	}
	return m
}

// Algorithm is one DP release mechanism.
type Algorithm interface {
	Name() string
	// Release produces an epsilon-DP (user-level) version of the horizon
	// consumption matrix.
	Release(in Input, epsilon float64, seed int64) (*grid.Matrix, error)
}

// Registry returns every implemented baseline, in the paper's order. The
// Fourier and Wavelet entries appear with k = 10 and k = 20 as in Figure 6.
func Registry() []Algorithm {
	return []Algorithm{
		NewIdentity(),
		NewFAST(),
		NewFourier(10),
		NewFourier(20),
		NewWavelet(10),
		NewWavelet(20),
		NewLGANDP(),
	}
}

// Extended returns additional algorithms beyond the paper's Figure-6
// suite: WPO (Figure 7), plus the AR(1) correlated-release, adaptive-grid
// and HTF methods from the related-work discussion.
func Extended() []Algorithm {
	return []Algorithm{NewWPO(), NewAR1(), NewAdaptiveGrid(), NewHTF()}
}

// Names returns the sorted names of every registered algorithm (Figure-6
// registry plus the extended set). Usage strings should derive from this
// so they cannot drift from the registry.
func Names() []string {
	all := append(Registry(), Extended()...)
	names := make([]string, 0, len(all))
	for _, a := range all {
		names = append(names, a.Name())
	}
	sort.Strings(names)
	return names
}

// Lookup finds a baseline by name, searching the Figure-6 registry and
// the extended set.
func Lookup(name string) (Algorithm, error) {
	for _, a := range append(Registry(), Extended()...) {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("baselines: unknown algorithm %q (have %v)", name, Names())
}

// ContextReleaser is optionally implemented by algorithms whose Release
// runs long enough to want cooperative cancellation (e.g. LGAN-DP's GAN
// training loop). ReleaseContext dispatches to it when present.
type ContextReleaser interface {
	ReleaseContext(ctx context.Context, in Input, epsilon float64, seed int64) (*grid.Matrix, error)
}

// ReleaseContext releases via a, honouring the context and the
// resilience fault-injection point FaultRelease (payload: the algorithm
// name). Algorithms implementing ContextReleaser get the context for
// in-flight cancellation checks; the rest are checked before and after
// the (uninterruptible) release.
func ReleaseContext(ctx context.Context, a Algorithm, in Input, epsilon float64, seed int64) (*grid.Matrix, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := resilience.Fire(ctx, resilience.FaultRelease, a.Name()); err != nil {
		return nil, fmt.Errorf("baselines: %s release: %w", a.Name(), err)
	}
	if cr, ok := a.(ContextReleaser); ok {
		return cr.ReleaseContext(ctx, in, epsilon, seed)
	}
	m, err := a.Release(in, epsilon, seed)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// clampNonNegative zeroes negative cells in place — valid post-processing,
// since consumption is non-negative.
func clampNonNegative(m *grid.Matrix) {
	d := m.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		}
	}
}
