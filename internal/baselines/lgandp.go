package baselines

import (
	"context"
	"math/rand"

	"repro/internal/dp"
	"repro/internal/grid"
	"repro/internal/nn"
	"repro/internal/timeseries"
)

// LGANDP follows Zhang et al. (FGCS 2023): an LSTM-based GAN whose
// training objective is perturbed with Laplace noise so the generator is
// differentially private, then used to synthesise the release. We keep the
// cited structure — LSTM generator, LSTM discriminator, noise injected
// into the discriminator's gradients each step, budget split over
// iterations — at a scale that runs on CPU. The generator is conditioned
// per pillar by seeding with that pillar's (noisy) history.
type LGANDP struct {
	// Iterations is the number of adversarial update rounds.
	Iterations int
	// Hidden sizes both networks.
	Hidden int
	// Window is the sequence length trained on.
	Window int
}

// NewLGANDP returns the baseline with CPU-friendly defaults.
func NewLGANDP() *LGANDP { return &LGANDP{Iterations: 30, Hidden: 8, Window: 6} }

// Name implements Algorithm.
func (*LGANDP) Name() string { return "lgan-dp" }

// Release implements Algorithm.
func (g *LGANDP) Release(in Input, epsilon float64, seed int64) (*grid.Matrix, error) {
	return g.ReleaseContext(context.Background(), in, epsilon, seed)
}

// ReleaseContext implements ContextReleaser: the GAN training loop checks
// the context every iteration and the synthesis loop every row, so the
// slowest baseline cancels promptly.
func (g *LGANDP) ReleaseContext(ctx context.Context, in Input, epsilon float64, seed int64) (*grid.Matrix, error) {
	truth := in.Truth()
	rng := rand.New(rand.NewSource(seed))
	lap := dp.NewLaplace(rng)
	T := truth.Ct

	// Scale normalisation for stable GAN training.
	maxVal := truth.Max()
	if maxVal == 0 {
		maxVal = 1
	}

	// Generator: window -> next value. Discriminator: window -> realness.
	gen := nn.NewRecurrentModel("lgan.gen", g.Window, 0, g.Hidden,
		nn.NewLSTMCell("lgan.gen.cell", g.Hidden, g.Hidden, rng), rng)
	disc := nn.NewRecurrentModel("lgan.disc", g.Window+1, 0, g.Hidden,
		nn.NewLSTMCell("lgan.disc.cell", g.Hidden, g.Hidden, rng), rng)
	genOpt := nn.NewAdam(5e-3)
	discOpt := nn.NewAdam(5e-3)

	// Real training windows from normalised pillars.
	var real []timeseries.Window
	for y := 0; y < truth.Cy; y++ {
		for x := 0; x < truth.Cx; x++ {
			p := truth.Pillar(x, y)
			for i := range p {
				p[i] /= maxVal
			}
			real = append(real, timeseries.SlidingWindows(p, g.Window)...)
		}
	}
	if len(real) == 0 {
		return nil, errNoWindows
	}

	// Budget split: 80% trains the GAN (split over iterations, since the
	// discriminator touches true data every round), 20% sanitises the
	// per-pillar seed windows used at synthesis time (split over the
	// Window timestamps; cells compose in parallel).
	epsTrain := 0.8 * epsilon
	epsSeed := 0.2 * epsilon
	epsIter := epsTrain / float64(g.Iterations)
	// Per-window influence on the normalised discriminator loss is
	// bounded by 1 after clipping; noise scale follows.
	gradClip := 1.0
	noiseScale := dp.Scale(2*gradClip, epsIter)

	discParams := disc.Params()
	genParams := gen.Params()
	for it := 0; it < g.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// --- Discriminator step on one real and one generated window.
		rw := real[rng.Intn(len(real))]
		realSeq := append(append([]float64{}, rw.Input...), rw.Target)
		fakeSeq := g.sample(gen, rw.Input)

		nn.ZeroGrads(discParams)
		// Least-squares GAN objective: D(real)→1, D(fake)→0.
		dr, cr := disc.Forward(realSeq, nil)
		disc.Backward(cr, 2*(dr-1))
		df, cf := disc.Forward(fakeSeq, nil)
		disc.Backward(cf, 2*df)
		nn.ClipGrads(discParams, gradClip)
		// DP: perturb the gradients that depend on true data.
		for _, p := range discParams {
			for i := range p.G.Data {
				p.G.Data[i] += lap.Sample(noiseScale) / float64(len(p.G.Data))
			}
		}
		discOpt.Step(discParams)

		// --- Generator step: fool the discriminator (no fresh true data;
		// post-processing of the DP discriminator).
		nn.ZeroGrads(genParams)
		pred, cg := gen.Forward(rw.Input, nil)
		seq := append(append([]float64{}, rw.Input...), pred)
		dg, _ := disc.Forward(seq, nil)
		// d/dpred of (D(seq)-1)² via finite difference through D's last input.
		const h = 1e-4
		seq[len(seq)-1] = pred + h
		dgp, _ := disc.Forward(seq, nil)
		dDdPred := (dgp - dg) / h
		gen.Backward(cg, 2*(dg-1)*dDdPred)
		nn.ClipGrads(genParams, gradClip)
		genOpt.Step(genParams)
	}

	// Synthesise: roll the generator forward from a Laplace-sanitised seed
	// per pillar.
	seedScale := dp.Scale(in.CellSensitivity/maxVal, epsSeed/float64(g.Window))
	out := grid.NewMatrix(truth.Cx, truth.Cy, T)
	for y := 0; y < truth.Cy; y++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for x := 0; x < truth.Cx; x++ {
			seed := make([]float64, g.Window)
			p := truth.Pillar(x, y)
			for i := 0; i < g.Window && i < len(p); i++ {
				seed[i] = p[i]/maxVal + lap.Sample(seedScale)
			}
			vals := nn.Rollout(gen, seed, nil, T)
			for t := range vals {
				// The generator works in [0, 1]-normalised space; clamp so
				// an unstable GAN cannot release unbounded values.
				v := vals[t]
				if v < 0 {
					v = 0
				}
				if v > 1.5 {
					v = 1.5
				}
				out.Set(x, y, t, v*maxVal)
			}
		}
	}
	clampNonNegative(out)
	return out, nil
}

// sample produces one generated sequence continuing the seed window.
func (g *LGANDP) sample(gen nn.Model, seedWindow []float64) []float64 {
	pred := nn.Predict(gen, seedWindow, nil)
	return append(append([]float64{}, seedWindow...), pred)
}
