package baselines

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/timeseries"
)

func testInput(cx, cy, n, T int, seed int64) Input {
	rng := rand.New(rand.NewSource(seed))
	d := &timeseries.Dataset{Name: "test", Cx: cx, Cy: cy}
	for i := 0; i < n; i++ {
		vals := make([]float64, T)
		base := 0.3 + rng.Float64()
		for t := range vals {
			vals[t] = base * (1 + 0.4*math.Sin(2*math.Pi*float64(t)/12))
			if vals[t] < 0 {
				vals[t] = 0
			}
		}
		d.Series = append(d.Series, &timeseries.Series{
			Location: timeseries.Location{X: rng.Intn(cx), Y: rng.Intn(cy)},
			Values:   vals,
		})
	}
	return Input{Dataset: d, TTrain: T / 3, CellSensitivity: 2}
}

func TestAllBaselinesProduceValidReleases(t *testing.T) {
	in := testInput(4, 4, 30, 24, 1)
	truth := in.Truth()
	algs := append(Registry(), NewWPO())
	for _, a := range algs {
		rel, err := a.Release(in, 10, 7)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if rel.Cx != truth.Cx || rel.Cy != truth.Cy || rel.Ct != truth.Ct {
			t.Fatalf("%s: dims %dx%dx%d", a.Name(), rel.Cx, rel.Cy, rel.Ct)
		}
		for _, v := range rel.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite release value", a.Name())
			}
			if v < 0 {
				t.Fatalf("%s: negative release value %v", a.Name(), v)
			}
		}
	}
}

func TestBaselinesDeterministicPerSeed(t *testing.T) {
	in := testInput(4, 4, 20, 18, 2)
	for _, a := range Registry() {
		r1, err := a.Release(in, 5, 42)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := a.Release(in, 5, 42)
		if err != nil {
			t.Fatal(err)
		}
		for i := range r1.Data() {
			if r1.Data()[i] != r2.Data()[i] {
				t.Fatalf("%s: not deterministic for fixed seed", a.Name())
			}
		}
	}
}

func TestIdentityErrorShrinksWithBudget(t *testing.T) {
	in := testInput(4, 4, 40, 20, 3)
	truth := in.Truth()
	id := NewIdentity()
	err := func(eps float64) float64 {
		var total float64
		const trials = 10
		for s := int64(0); s < trials; s++ {
			rel, e := id.Release(in, eps, s)
			if e != nil {
				t.Fatal(e)
			}
			for i, v := range rel.Data() {
				total += math.Abs(v - truth.Data()[i])
			}
		}
		return total / trials
	}
	lowBudget := err(1)
	highBudget := err(100)
	if highBudget >= lowBudget {
		t.Fatalf("error should shrink with budget: ε=1 → %v, ε=100 → %v", lowBudget, highBudget)
	}
}

func TestLookup(t *testing.T) {
	for _, name := range []string{"identity", "fast", "fourier-10", "fourier-20", "wavelet-10", "wavelet-20", "lgan-dp", "wpo"} {
		a, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != name {
			t.Fatalf("Lookup(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestTruthPanicsWithoutHorizon(t *testing.T) {
	in := testInput(2, 2, 4, 6, 4)
	in.TTrain = 6
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	in.Truth()
}

// --- Fourier internals ---

func TestDFTRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 7, 8, 16, 30, 64} {
		rng := rand.New(rand.NewSource(int64(n)))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		back := InverseDFT(DFT(x))
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip [%d] %v vs %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestDFTMatchesDirectOnPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 16)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	fft := DFT(x)
	c := make([]complex128, 16)
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	direct := dftDirect(c, false)
	for i := range fft {
		if math.Abs(real(fft[i])-real(direct[i])) > 1e-9 || math.Abs(imag(fft[i])-imag(direct[i])) > 1e-9 {
			t.Fatalf("FFT[%d] = %v, direct %v", i, fft[i], direct[i])
		}
	}
}

func TestDFTParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(32)
		x := make([]float64, n)
		var timeEnergy float64
		for i := range x {
			x[i] = rng.NormFloat64()
			timeEnergy += x[i] * x[i]
		}
		c := DFT(x)
		var freqEnergy float64
		for _, v := range c {
			re, im := real(v), imag(v)
			freqEnergy += re*re + im*im
		}
		freqEnergy /= float64(n)
		return math.Abs(timeEnergy-freqEnergy) < 1e-6*math.Max(1, timeEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// --- Haar internals ---

func TestHaarRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 32} {
		rng := rand.New(rand.NewSource(int64(n)))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		back := InverseHaar(HaarTransform(x))
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip failed at %d", n, i)
			}
		}
	}
}

// Property: Haar transform is orthonormal — it preserves the L2 norm.
func TestHaarOrthonormalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(5))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		c := HaarTransform(x)
		var ex, ec float64
		for i := range x {
			ex += x[i] * x[i]
			ec += c[i] * c[i]
		}
		return math.Abs(ex-ec) < 1e-9*math.Max(1, ex)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHaarPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HaarTransform(make([]float64, 6))
}

func TestHaarConstantSeries(t *testing.T) {
	x := []float64{3, 3, 3, 3}
	c := HaarTransform(x)
	// A constant series concentrates all energy in the smooth coefficient.
	if math.Abs(c[0]-6) > 1e-12 { // 3 * sqrt(4)
		t.Fatalf("smooth coefficient %v, want 6", c[0])
	}
	for i := 1; i < 4; i++ {
		if math.Abs(c[i]) > 1e-12 {
			t.Fatalf("detail coefficient %d = %v, want 0", i, c[i])
		}
	}
}

// --- FAST internals ---

func TestFASTTracksConstantSeriesWithGenerousBudget(t *testing.T) {
	in := testInput(2, 2, 10, 30, 5)
	// Override: constant consumption.
	for _, s := range in.Dataset.Series {
		for i := range s.Values {
			s.Values[i] = 1
		}
	}
	truth := in.Truth()
	rel, err := NewFAST().Release(in, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i, v := range rel.Data() {
		if d := math.Abs(v - truth.Data()[i]); d > worst {
			worst = d
		}
	}
	if worst > truth.Max()*0.5 {
		t.Fatalf("FAST tracking error %v too large for constant series", worst)
	}
}

func TestWPOIsSpatiallyUniform(t *testing.T) {
	in := testInput(4, 4, 30, 24, 6)
	rel, err := NewWPO().Release(in, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every cell within a time slice must hold the same value.
	for tt := 0; tt < rel.Ct; tt++ {
		v0 := rel.At(0, 0, tt)
		for y := 0; y < rel.Cy; y++ {
			for x := 0; x < rel.Cx; x++ {
				if rel.At(x, y, tt) != v0 {
					t.Fatalf("WPO not uniform at t=%d", tt)
				}
			}
		}
	}
}

func TestFourierHighBudgetRecoversSmoothSeries(t *testing.T) {
	in := testInput(2, 2, 20, 24, 7)
	truth := in.Truth()
	rel, err := NewFourier(20).Release(in, 1e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With k = 20 of 16 horizon points (k capped at T) and huge budget the
	// reconstruction should be near-exact.
	for i, v := range rel.Data() {
		if math.Abs(v-truth.Data()[i]) > 0.05*math.Max(1, truth.Max()) {
			t.Fatalf("Fourier reconstruction off at %d: %v vs %v", i, v, truth.Data()[i])
		}
	}
}

func TestExtendedBaselinesProduceValidReleases(t *testing.T) {
	in := testInput(8, 8, 60, 24, 11)
	truth := in.Truth()
	for _, a := range Extended() {
		rel, err := a.Release(in, 20, 5)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if rel.Len() != truth.Len() {
			t.Fatalf("%s: size mismatch", a.Name())
		}
		for _, v := range rel.Data() {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: invalid value %v", a.Name(), v)
			}
		}
	}
}

func TestAR1SmoothsBetterThanIdentityOnPersistentSeries(t *testing.T) {
	// Slowly varying truth: the AR(1) posterior should beat raw
	// per-timestamp noise.
	in := testInput(4, 4, 40, 30, 12)
	for _, s := range in.Dataset.Series {
		for i := range s.Values {
			s.Values[i] = 1 + 0.1*math.Sin(float64(i)/10)
		}
	}
	truth := in.Truth()
	errOf := func(a Algorithm) float64 {
		var total float64
		for seed := int64(0); seed < 10; seed++ {
			rel, err := a.Release(in, 5, seed)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range rel.Data() {
				total += math.Abs(v - truth.Data()[i])
			}
		}
		return total
	}
	if ar := errOf(NewAR1()); ar >= errOf(NewIdentity()) {
		t.Fatalf("AR1 (%v) should beat Identity (%v) on persistent series", ar, errOf(NewIdentity()))
	}
}

func TestAdaptiveGridCoarsensUnderSmallBudget(t *testing.T) {
	in := testInput(8, 8, 30, 18, 13)
	// Tiny budget → m = 1 → every time slice spatially uniform.
	rel, err := NewAdaptiveGrid().Release(in, 0.0001, 3)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < rel.Ct; tt++ {
		v0 := rel.At(0, 0, tt)
		for y := 0; y < rel.Cy; y++ {
			for x := 0; x < rel.Cx; x++ {
				if rel.At(x, y, tt) != v0 {
					t.Fatalf("tiny-budget adaptive grid should be uniform at t=%d", tt)
				}
			}
		}
	}
}

func TestHTFPartitionsTrackMass(t *testing.T) {
	// Heavy mass confined to one quadrant: with a generous budget HTF's
	// mass-balancing splits should localise it, so the empty corner
	// receives far less than the hotspot.
	in := testInput(8, 8, 40, 16, 21)
	for _, s := range in.Dataset.Series {
		hot := s.Location.X < 4 && s.Location.Y < 4
		for i := range s.Values {
			if hot {
				s.Values[i] = 2
			} else {
				s.Values[i] = 0.01
			}
		}
	}
	rel, err := NewHTF().Release(in, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	var hot, cold float64
	for tt := 0; tt < rel.Ct; tt++ {
		hot += rel.At(1, 1, tt)
		cold += rel.At(6, 6, tt)
	}
	if hot < 3*cold {
		t.Fatalf("HTF failed to localise mass: hot %v vs cold %v", hot, cold)
	}
}

func TestHTFSingleCellMatrix(t *testing.T) {
	// Degenerate 1x1x1 volume must not split and must release one value.
	in := testInput(1, 1, 3, 3, 22)
	in.TTrain = 2
	rel, err := NewHTF().Release(in, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("cells = %d", rel.Len())
	}
}
