package baselines

import (
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/dp"
	"repro/internal/grid"
)

// Fourier is the Fourier Perturbation Algorithm FPA-k of Rastogi & Nath
// (SIGMOD 2010) with the sensitivity treatment of Leukam Lako et al. Both
// works — like all the electricity baselines the paper surveys in §6 —
// sanitise "the information of a single consumer independently from
// others": each household's clipped series is DFT-transformed, the first
// K coefficients are perturbed with Laplace noise λ = √K·Δ₂/ε (Δ₂ ≤
// clip·√T, the L2 norm of one user's whole series under user-level
// privacy), the rest are dropped, and the sanitised household series are
// aggregated into the consumption matrix. Households are disjoint, so
// each spends the full budget (parallel composition); the per-household
// truncation error and the √(households) noise growth per cell are what
// the mechanism trades for its compact representation.
type Fourier struct {
	K int
}

// NewFourier returns FPA with the given number of retained coefficients.
func NewFourier(k int) *Fourier { return &Fourier{K: k} }

// Name implements Algorithm.
func (f *Fourier) Name() string {
	if f.K == 10 {
		return "fourier-10"
	}
	if f.K == 20 {
		return "fourier-20"
	}
	return "fourier"
}

// Release implements Algorithm.
func (f *Fourier) Release(in Input, epsilon float64, seed int64) (*grid.Matrix, error) {
	d := in.Dataset
	T := d.T() - in.TTrain
	if T <= 0 {
		return nil, errNoWindows
	}
	lap := dp.NewLaplace(rand.New(rand.NewSource(seed)))
	k := f.K
	if k > T {
		k = T
	}
	// User-level L2 sensitivity of one household's series: removing the
	// user zeroes all T clipped readings, so Δ₂ ≤ clip·√T.
	l2 := in.CellSensitivity * math.Sqrt(float64(T))
	// FPA-k: λ = √k·Δ₂/ε per retained coefficient.
	scale := dp.Scale(math.Sqrt(float64(k))*l2, epsilon)
	out := grid.NewMatrix(d.Cx, d.Cy, T)
	series := make([]float64, T)
	for _, s := range d.Series {
		for t := 0; t < T; t++ {
			series[t] = math.Min(s.Values[in.TTrain+t], in.CellSensitivity)
		}
		coef := DFT(series)
		kept := make([]complex128, len(coef))
		for i := 0; i < k; i++ {
			kept[i] = coef[i] + complex(lap.Sample(scale), lap.Sample(scale))
		}
		rec := InverseDFT(kept)
		for t, v := range rec {
			out.AddAt(s.Location.X, s.Location.Y, t, v)
		}
	}
	clampNonNegative(out)
	return out, nil
}

// DFT computes the discrete Fourier transform of a real series. It uses
// an iterative radix-2 FFT when the length is a power of two and the
// O(n²) direct transform otherwise (horizons in this work are short).
func DFT(x []float64) []complex128 {
	n := len(x)
	c := make([]complex128, n)
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return fftInPlace(c, false)
}

// InverseDFT reconstructs a real series from coefficients (imaginary
// residue discarded).
func InverseDFT(c []complex128) []float64 {
	n := len(c)
	work := make([]complex128, n)
	copy(work, c)
	out := fftInPlace(work, true)
	res := make([]float64, n)
	for i, v := range out {
		res[i] = real(v) / float64(n)
	}
	return res
}

func fftInPlace(c []complex128, inverse bool) []complex128 {
	n := len(c)
	if n == 0 {
		return c
	}
	if n&(n-1) != 0 {
		return dftDirect(c, inverse)
	}
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			c[i], c[j] = c[j], c[i]
		}
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := c[i+j]
				v := c[i+j+length/2] * w
				c[i+j] = u + v
				c[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return c
}

func dftDirect(c []complex128, inverse bool) []complex128 {
	n := len(c)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	out := make([]complex128, n)
	for kk := 0; kk < n; kk++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := sign * 2 * math.Pi * float64(kk) * float64(t) / float64(n)
			sum += c[t] * cmplx.Exp(complex(0, ang))
		}
		out[kk] = sum
	}
	return out
}
