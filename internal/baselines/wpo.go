package baselines

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/dp"
	"repro/internal/grid"
	"repro/internal/mat"
)

// errNoWindows is returned when a horizon is too short to train on.
var errNoWindows = errors.New("baselines: horizon too short to form training windows")

// WPO adapts Dvorkin & Botterud's wind power obfuscation (IEEE L-CSS
// 2023): the aggregate consumption series is perturbed with the Laplace
// mechanism at event level, and a convex least-squares program fits
// regression weights over a harmonic feature basis (the stand-in for their
// optimal-power-flow consistency constraints); the fitted model generates
// the synthetic release. The algorithm is geospatially blind — it operates
// on the map-wide aggregate and spreads it back uniformly — and
// event-level, so under user-level accounting its budget splits over every
// released timestamp. Both properties are why Figure 7 shows it trailing
// even Identity.
type WPO struct {
	// Harmonics is the number of sine/cosine pairs in the feature basis.
	Harmonics int
	// Period is the seasonality the basis models: 7 for day-granularity
	// data with a weekly cycle (the paper's release granularity), 24 for
	// hourly data. Zero picks 7.
	Period float64
}

// NewWPO returns the baseline with a weekly-cycle basis.
func NewWPO() *WPO { return &WPO{Harmonics: 4, Period: 7} }

// Name implements Algorithm.
func (*WPO) Name() string { return "wpo" }

// Release implements Algorithm.
func (w *WPO) Release(in Input, epsilon float64, seed int64) (*grid.Matrix, error) {
	truth := in.Truth()
	lap := dp.NewLaplace(rand.New(rand.NewSource(seed)))
	T := truth.Ct
	period := w.Period
	if period <= 0 {
		period = 7
	}

	// Event-level design charged at user level: each of the T aggregate
	// readings costs ε/T; sensitivity of the map-wide aggregate at one
	// timestamp is one household's clipped reading.
	perStep := epsilon / float64(T)
	scale := dp.Scale(in.CellSensitivity, perStep)
	agg := make([]float64, T)
	for t := 0; t < T; t++ {
		var s float64
		for y := 0; y < truth.Cy; y++ {
			for x := 0; x < truth.Cx; x++ {
				s += truth.At(x, y, t)
			}
		}
		agg[t] = s + lap.Sample(scale)
	}

	// Convex program: least-squares regression of the noisy aggregate on
	// [1, t, sin/cos harmonics], solved via the normal equations (the
	// unconstrained KKT point of the quadratic program).
	nf := 2 + 2*w.Harmonics
	X := mat.New(T, nf)
	for t := 0; t < T; t++ {
		row := X.Row(t)
		row[0] = 1
		row[1] = float64(t) / float64(T)
		for h := 1; h <= w.Harmonics; h++ {
			ang := 2 * math.Pi * float64(h) * float64(t) / period
			row[2*h] = math.Sin(ang)
			row[2*h+1] = math.Cos(ang)
		}
	}
	weights, err := mat.LeastSquares(X, agg, 1e-8)
	if err != nil {
		return nil, err
	}
	fitted := X.MulVec(weights)

	// Spread each fitted aggregate uniformly over the grid (no geospatial
	// information — the core weakness the paper highlights).
	cells := float64(truth.Cx * truth.Cy)
	out := grid.NewMatrix(truth.Cx, truth.Cy, T)
	for t := 0; t < T; t++ {
		share := fitted[t] / cells
		if share < 0 {
			share = 0
		}
		for y := 0; y < truth.Cy; y++ {
			for x := 0; x < truth.Cx; x++ {
				out.Set(x, y, t, share)
			}
		}
	}
	return out, nil
}
