package baselines

import (
	"math"
	"math/rand"

	"repro/internal/dp"
	"repro/internal/grid"
)

// Wavelet is the discrete Haar wavelet perturbation algorithm of Lyu et
// al. — like the cited work, a per-meter mechanism: each household's
// clipped series is transformed with the orthonormal Haar wavelet, the K
// coarsest coefficients are retained and Laplace-perturbed (the transform
// is orthonormal, so the user-level L2 sensitivity carries over
// unchanged), the inverse transform reconstructs the household's series,
// and the sanitised series are aggregated into the consumption matrix.
type Wavelet struct {
	K int
}

// NewWavelet returns the Haar perturbation algorithm keeping k coefficients.
func NewWavelet(k int) *Wavelet { return &Wavelet{K: k} }

// Name implements Algorithm.
func (w *Wavelet) Name() string {
	if w.K == 10 {
		return "wavelet-10"
	}
	if w.K == 20 {
		return "wavelet-20"
	}
	return "wavelet"
}

// Release implements Algorithm.
func (w *Wavelet) Release(in Input, epsilon float64, seed int64) (*grid.Matrix, error) {
	d := in.Dataset
	T := d.T() - in.TTrain
	if T <= 0 {
		return nil, errNoWindows
	}
	lap := dp.NewLaplace(rand.New(rand.NewSource(seed)))
	padded := nextPow2(T)
	k := w.K
	if k > padded {
		k = padded
	}
	l2 := in.CellSensitivity * math.Sqrt(float64(T))
	scale := dp.Scale(math.Sqrt(float64(k))*l2, epsilon)
	out := grid.NewMatrix(d.Cx, d.Cy, T)
	buf := make([]float64, padded)
	for _, s := range d.Series {
		for t := 0; t < padded; t++ {
			if t < T {
				buf[t] = math.Min(s.Values[in.TTrain+t], in.CellSensitivity)
			} else {
				buf[t] = 0
			}
		}
		coef := HaarTransform(buf)
		// Coefficients are ordered coarse-to-fine; keep the first k.
		for i := range coef {
			if i < k {
				coef[i] += lap.Sample(scale)
			} else {
				coef[i] = 0
			}
		}
		rec := InverseHaar(coef)
		for t := 0; t < T; t++ {
			out.AddAt(s.Location.X, s.Location.Y, t, rec[t])
		}
	}
	clampNonNegative(out)
	return out, nil
}

// HaarTransform computes the orthonormal Haar wavelet transform of a
// power-of-two-length series. Output ordering: [smooth, detail_coarsest,
// ..., detail_finest].
func HaarTransform(x []float64) []float64 {
	n := len(x)
	if n&(n-1) != 0 {
		panic("baselines: Haar transform needs power-of-two length")
	}
	out := make([]float64, n)
	copy(out, x)
	tmp := make([]float64, n)
	for length := n; length > 1; length /= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			tmp[i] = (out[2*i] + out[2*i+1]) / math.Sqrt2
			tmp[half+i] = (out[2*i] - out[2*i+1]) / math.Sqrt2
		}
		copy(out[:length], tmp[:length])
	}
	return out
}

// InverseHaar inverts HaarTransform.
func InverseHaar(c []float64) []float64 {
	n := len(c)
	if n&(n-1) != 0 {
		panic("baselines: inverse Haar needs power-of-two length")
	}
	out := make([]float64, n)
	copy(out, c)
	tmp := make([]float64, n)
	for length := 2; length <= n; length *= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			tmp[2*i] = (out[i] + out[half+i]) / math.Sqrt2
			tmp[2*i+1] = (out[i] - out[half+i]) / math.Sqrt2
		}
		copy(out[:length], tmp[:length])
	}
	return out
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
