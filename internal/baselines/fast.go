package baselines

import (
	"math"
	"math/rand"

	"repro/internal/dp"
	"repro/internal/grid"
)

// FAST is the adaptive-sampling framework of Fan & Xiong (TKDE 2014):
// instead of perturbing every timestamp, it samples a subset, spends the
// per-sample budget ε/M on each sampled reading, and runs a scalar Kalman
// filter whose prediction fills the gaps. A PID controller widens the
// sampling interval while the filter tracks well and narrows it when the
// feedback error grows.
type FAST struct {
	// MaxSamples caps the number of sampled timestamps M per pillar; 0
	// defaults to half the horizon.
	MaxSamples int
	// ProcessVar is the Kalman process noise Q.
	ProcessVar float64
	// PID gains (defaults follow the FAST paper's Cp=0.9, Ci=0.1, Cd=0).
	Cp, Ci, Cd float64
	// Theta is the PID set point for the relative feedback error.
	Theta float64
}

// NewFAST returns FAST with the paper-default controller gains.
func NewFAST() *FAST {
	return &FAST{ProcessVar: 1e-3, Cp: 0.9, Ci: 0.1, Cd: 0, Theta: 0.1}
}

// Name implements Algorithm.
func (*FAST) Name() string { return "fast" }

// Release implements Algorithm.
func (f *FAST) Release(in Input, epsilon float64, seed int64) (*grid.Matrix, error) {
	truth := in.Truth()
	lap := dp.NewLaplace(rand.New(rand.NewSource(seed)))
	T := truth.Ct
	m := f.MaxSamples
	if m <= 0 {
		m = (T + 1) / 2
	}
	if m > T {
		m = T
	}
	epsSample := epsilon / float64(m)
	b := dp.Scale(in.CellSensitivity, epsSample)
	R := 2 * b * b // Laplace variance as Gaussian measurement noise
	out := grid.NewMatrix(truth.Cx, truth.Cy, T)
	for y := 0; y < truth.Cy; y++ {
		for x := 0; x < truth.Cx; x++ {
			series := truth.Pillar(x, y)
			out.SetPillar(x, y, f.filterSeries(series, m, b, R, lap))
		}
	}
	clampNonNegative(out)
	return out, nil
}

// filterSeries runs sampling + Kalman filtering over one pillar.
func (f *FAST) filterSeries(series []float64, maxSamples int, b, R float64, lap *dp.Laplace) []float64 {
	T := len(series)
	out := make([]float64, T)
	// Kalman state: estimate xe with variance P.
	xe := 0.0
	P := R // uninformative start
	interval := 1.0
	nextSample := 0.0
	used := 0
	var integral, prevErr float64
	q := f.ProcessVar * math.Max(1, b*b)
	for t := 0; t < T; t++ {
		// Predict.
		P += q
		if float64(t) >= nextSample && used < maxSamples {
			z := series[t] + lap.Sample(b)
			used++
			// Update.
			K := P / (P + R)
			innov := z - xe
			xe += K * innov
			P *= 1 - K
			// PID feedback on the relative innovation.
			den := math.Max(math.Abs(z), 1)
			e := math.Abs(innov) / den
			integral += e
			deriv := e - prevErr
			prevErr = e
			pid := f.Cp*e + f.Ci*integral/float64(used) + f.Cd*deriv
			// Error above the set point shrinks the interval, below grows it.
			adj := f.Theta - pid
			interval = math.Max(1, interval+adj*interval)
			nextSample = float64(t) + interval
		}
		out[t] = xe
	}
	return out
}
