package pipeline

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// ScanManifest reproduces recovery's view byte-for-byte without
// touching the file: same records, torn tail reported instead of
// truncated, interior damage refused with the line number.
func TestScanManifestMirrorsRecovery(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "manifest")
	m, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Window: 1, State: StateCut, T0: 0, T1: 3, Seed: 7},
		{Window: 1, State: StateReleased, Checksum: 0xabcd},
		{Window: 1, State: StateCharged, Eps: 0.5, Levels: []int{0}},
		{Window: 1, State: StatePublished},
		{Window: 1, State: StateReloaded},
	}
	for _, r := range recs {
		if err := m.Append(ctx, r); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, durable, err := ScanManifest(path, raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) || durable != int64(len(raw)) {
		t.Fatalf("scan: %d records durable=%d, want %d records durable=%d", len(got), durable, len(recs), len(raw))
	}

	// Torn tail: tolerated, durable stops short.
	torn := append(append([]byte{}, raw...), []byte("deadbeef {\"seq\":6")...)
	got, durable, err = ScanManifest(path, torn)
	if err != nil || len(got) != len(recs) || durable != int64(len(raw)) {
		t.Fatalf("torn scan: %d records durable=%d err=%v", len(got), durable, err)
	}

	// Interior damage: refused with the line number.
	bad := append([]byte{}, raw...)
	nl := 0
	for i, b := range bad {
		if b == '\n' {
			nl = i
			break
		}
	}
	bad[nl-2] ^= 0x01
	_, _, err = ScanManifest(path, bad)
	if !errors.Is(err, ErrManifestCorrupt) || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("interior damage: %v, want ErrManifestCorrupt at line 1", err)
	}

	// A spliced journal breaking the lifecycle (reloaded → released) is
	// refused by the shared transition check.
	lines := strings.SplitAfter(string(raw), "\n")
	spliced := []byte(strings.Join(lines[:len(lines)-1], "") + lines[1])
	_, _, err = ScanManifest(path, spliced)
	if !errors.Is(err, ErrManifestCorrupt) {
		t.Fatalf("spliced lifecycle: %v, want ErrManifestCorrupt", err)
	}
}
