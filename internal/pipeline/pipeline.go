package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/datasets"
	"repro/internal/dp"
	"repro/internal/ingest"
	"repro/internal/resilience"
)

// Notifier tells the serving tier a new generation is published.
// Typically an HTTPNotifier ringing stpt-serve's /-/reload bell; nil
// means nothing listens and the reload stage is a journalled no-op.
type Notifier interface {
	Notify(ctx context.Context) error
}

// NotifierFunc adapts a function to the Notifier interface.
type NotifierFunc func(ctx context.Context) error

// Notify implements Notifier.
func (f NotifierFunc) Notify(ctx context.Context) error { return f(ctx) }

// HTTPNotifier returns a Notifier that POSTs url with the bearer token,
// the shape of stpt-serve's authenticated /-/reload endpoint. A nil
// client uses a default with a conservative timeout.
func HTTPNotifier(url, token string, client *http.Client) Notifier {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return NotifierFunc(func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
		if err != nil {
			return fmt.Errorf("pipeline: reload request: %w", err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := client.Do(req)
		if err != nil {
			return fmt.Errorf("pipeline: reload notify: %w", err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("pipeline: reload notify: %s answered %d", url, resp.StatusCode)
		}
		return nil
	})
}

// Config parameterises a Supervisor.
type Config struct {
	// Dataset is the ledger dataset name the tree composer charges. The
	// pipeline owns it exclusively.
	Dataset string
	// OutDir receives the published releases: window-%06d.csv per
	// window plus latest.csv, with a staging/ subdirectory for frozen
	// cuts and not-yet-published releases.
	OutDir string
	// Window is the number of time intervals per published window.
	Window int
	// EpsNode is ε_node, the per-tree-node budget each window's release
	// is sanitised with; total spend grows as ε_node·(⌊log₂ n⌋+1).
	EpsNode float64
	// Budget is the lifetime ε budget enforced by the ledger; <= 0
	// means unlimited. Raising it at runtime (SetBudget) resumes a
	// budget-exhausted pipeline automatically.
	Budget float64
	// Sensitivity is the per-cell L1 sensitivity (default 1: one
	// household contributes one reading per interval).
	Sensitivity float64
	// Seed derives each window's deterministic noise seed; the seed is
	// frozen into the window's cut record so crash recovery re-noises
	// bit-identically.
	Seed int64
	// Policy bounds per-stage retries of transient failures.
	Policy resilience.Policy
	// Notifier is rung after each publication (nil: no serving tier).
	Notifier Notifier
}

// Status is a point-in-time snapshot of the supervisor for /status and
// /readyz.
type Status struct {
	Dataset         string  `json:"dataset"`
	LastWindow      int     `json:"last_window"`
	State           State   `json:"state,omitempty"`
	Published       int     `json:"published"`
	Spent           float64 `json:"spent"`
	Budget          float64 `json:"budget"`
	BudgetExhausted bool    `json:"budget_exhausted"`
	LastError       string  `json:"last_error,omitempty"`
}

// Supervisor drives the continual-release lifecycle. Exactly one
// supervisor may own a (manifest, ledger dataset, OutDir) triple.
type Supervisor struct {
	cfg  Config
	in   *ingest.Ingester
	led  *dp.Ledger
	man  *Manifest
	tree *dp.TreeComposer

	mu        sync.Mutex
	budget    float64
	exhausted bool
	lastErr   string
}

// New validates cfg, prepares the output and staging directories, and
// builds a supervisor resuming from whatever the manifest already
// records. Staged files from interrupted windows are kept — recovery
// needs them — and swept only once their window completes.
func New(cfg Config, in *ingest.Ingester, led *dp.Ledger, man *Manifest) (*Supervisor, error) {
	if cfg.Window < 1 {
		return nil, fmt.Errorf("pipeline: window size %d (want >= 1 intervals)", cfg.Window)
	}
	if cfg.OutDir == "" {
		return nil, errors.New("pipeline: output directory required")
	}
	if cfg.Sensitivity == 0 {
		cfg.Sensitivity = 1
	}
	if cfg.Sensitivity < 0 {
		return nil, fmt.Errorf("pipeline: negative sensitivity %v", cfg.Sensitivity)
	}
	tree, err := dp.NewTreeComposer(cfg.Dataset, cfg.EpsNode)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(cfg.OutDir, "staging"), 0o755); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	return &Supervisor{cfg: cfg, in: in, led: led, man: man, tree: tree, budget: cfg.Budget}, nil
}

// WindowPath, LatestPath, CutPath and RelPath name the pipeline's
// on-disk artifacts under an output directory. They are the single
// source of truth for the layout — the supervisor writes through them
// and the integrity tooling (scrubber, stpt-doctor) audits through
// them, so the two can never disagree about where a window lives.
func WindowPath(outDir string, w int) string {
	return filepath.Join(outDir, fmt.Sprintf("window-%06d.csv", w))
}

// LatestPath names the always-current alias of the newest release.
func LatestPath(outDir string) string { return filepath.Join(outDir, "latest.csv") }

// CutPath names window w's frozen raw sub-matrix in staging.
func CutPath(outDir string, w int) string {
	return filepath.Join(outDir, "staging", fmt.Sprintf("window-%06d.cut.csv", w))
}

// RelPath names window w's staged (not yet published) release.
func RelPath(outDir string, w int) string {
	return filepath.Join(outDir, "staging", fmt.Sprintf("window-%06d.rel.csv", w))
}

func (s *Supervisor) windowPath(w int) string { return WindowPath(s.cfg.OutDir, w) }
func (s *Supervisor) latestPath() string      { return LatestPath(s.cfg.OutDir) }
func (s *Supervisor) cutPath(w int) string    { return CutPath(s.cfg.OutDir, w) }
func (s *Supervisor) relPath(w int) string    { return RelPath(s.cfg.OutDir, w) }

// windowSeed derives window w's noise seed from the configured base.
// The multiplier is an arbitrary prime spreading consecutive windows
// far apart in seed space; what matters is determinism, not quality —
// the seed feeds a PRNG whose draws are what the DP analysis treats as
// the noise.
func windowSeed(base int64, w int) int64 { return base + int64(w)*1000003 }

// next returns the window and state the supervisor should execute now,
// derived purely from the manifest tip.
func (s *Supervisor) next() (int, State) {
	w, st := s.man.LastWindow(), s.man.LastState()
	switch {
	case w == 0:
		return 1, StateCut
	case st == StateReloaded:
		return w + 1, StateCut
	default:
		return w, st.next()
	}
}

// Step executes exactly one lifecycle stage (with per-stage retry) and
// reports whether it advanced. (false, nil) means there is nothing to
// do yet: the next window's span is not fully ingested, or the stream
// has ended. Budget exhaustion surfaces as an error wrapping
// dp.ErrBudgetExhausted and latches the degraded state Status reports;
// the stage stays pending, so a later Step — after SetBudget or a
// restart with a larger budget — resumes exactly there.
func (s *Supervisor) Step(ctx context.Context) (bool, error) {
	w, st := s.next()
	if st == StateCut && !s.windowReady(w) {
		return false, nil
	}
	var stage func(context.Context, int) error
	switch st {
	case StateCut:
		stage = s.doCut
	case StateReleased:
		stage = s.doRelease
	case StateCharged:
		stage = s.doCharge
	case StatePublished:
		stage = s.doPublish
	case StateReloaded:
		stage = s.doReload
	}
	err := resilience.Retry(ctx, s.cfg.Policy, func(int, int64) error {
		return classify(stage(ctx, w))
	})
	s.noteOutcome(st, err)
	if err != nil {
		return false, fmt.Errorf("pipeline: window %d stage %s: %w", w, st, err)
	}
	return true, nil
}

// classify marks transient errors retryable for the stage retry loop.
// Refusals that retrying cannot fix — an exhausted budget, a poisoned
// or corrupt journal — pass through fatal, stopping the policy loop on
// the first attempt.
func classify(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, dp.ErrBudgetExhausted),
		errors.Is(err, dp.ErrLedgerPoisoned),
		errors.Is(err, ErrManifestPoisoned),
		errors.Is(err, ErrManifestCorrupt):
		return err
	default:
		return resilience.MarkRetryable(err)
	}
}

// noteOutcome maintains the degraded-state latch /readyz reports.
func (s *Supervisor) noteOutcome(st State, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		s.exhausted = false
		s.lastErr = ""
	case errors.Is(err, dp.ErrBudgetExhausted):
		s.exhausted = true
		s.lastErr = err.Error()
	default:
		s.lastErr = fmt.Sprintf("stage %s: %v", st, err)
	}
}

// windowReady reports whether window w's whole span is inside the
// configured time range and covered by durably committed readings.
func (s *Supervisor) windowReady(w int) bool {
	_, _, ct := s.in.Dims()
	end := w * s.cfg.Window
	return end <= ct && s.in.HighWater() >= end
}

// doCut freezes window w's committed sub-matrix into staging and
// journals the cut. Until the record is durable the cut is not
// authoritative — a crash before the append re-cuts, legitimately
// including any readings that arrived in between. After it, the staged
// file is the window's data, and late arrivals are excluded by design.
func (s *Supervisor) doCut(ctx context.Context, w int) error {
	t0, t1 := (w-1)*s.cfg.Window, w*s.cfg.Window
	cut, err := s.in.CutWindow(t0, t1)
	if err != nil {
		return err
	}
	if err := resilience.Fire(ctx, resilience.FaultWindowCut, w); err != nil {
		return err
	}
	if err := resilience.AtomicWriteFile(ctx, s.cutPath(w), func(wr io.Writer) error {
		return datasets.SaveMatrixCSV(cut, wr)
	}); err != nil {
		return err
	}
	return s.man.Append(ctx, Record{
		Window: w, State: StateCut, T0: t0, T1: t1, Seed: windowSeed(s.cfg.Seed, w),
	})
}

// sanitise loads window w's frozen cut and applies the Laplace
// mechanism cell-by-cell with the cut record's seed, returning the
// encoded release bytes. Fully deterministic given the cut file and the
// record, which is what makes every later stage redoable.
func (s *Supervisor) sanitise(w int, cutRec Record) ([]byte, error) {
	return RebuildRelease(s.cfg.OutDir, cutRec, s.cfg.EpsNode, s.cfg.Sensitivity)
}

// RebuildRelease re-derives window cutRec.Window's release bytes from
// its frozen cut: load the staged cut, re-noise with the journalled
// seed, re-encode. Given the same cut file and record the output is
// bit-identical every time, which is what lets crash recovery redo a
// publish — and lets stpt-doctor repair a damaged window file offline —
// and then prove the bytes against the journalled checksum.
func RebuildRelease(outDir string, cutRec Record, epsNode, sensitivity float64) ([]byte, error) {
	w := cutRec.Window
	f, err := os.Open(CutPath(outDir, w))
	if err != nil {
		return nil, fmt.Errorf("pipeline: window %d cut missing: %w", w, err)
	}
	m, err := datasets.LoadMatrixCSV(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("pipeline: window %d cut: %w", w, err)
	}
	if want := cutRec.T1 - cutRec.T0; m.Ct != want {
		return nil, fmt.Errorf("pipeline: window %d cut spans %d intervals, journal says %d", w, m.Ct, want)
	}
	lap := dp.NewLaplace(rand.New(rand.NewSource(cutRec.Seed)))
	data := m.Data()
	for i := range data {
		data[i] = lap.Perturb(data[i], sensitivity, epsNode)
	}
	var buf bytes.Buffer
	if err := datasets.SaveMatrixCSV(m, &buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// doRelease sanitises the frozen cut into a staged release and journals
// its checksum.
func (s *Supervisor) doRelease(ctx context.Context, w int) error {
	cutRec, ok := s.man.Get(w, StateCut)
	if !ok {
		return fmt.Errorf("%w: window %d has no cut record", ErrManifestCorrupt, w)
	}
	rel, err := s.sanitise(w, cutRec)
	if err != nil {
		return err
	}
	if err := resilience.AtomicWriteFile(ctx, s.relPath(w), func(wr io.Writer) error {
		_, werr := wr.Write(rel)
		return werr
	}); err != nil {
		return err
	}
	return s.man.Append(ctx, Record{
		Window: w, State: StateReleased, Checksum: crc32.ChecksumIEEE(rel),
	})
}

// doCharge spends the window's tree-composed ε against the ledger. The
// composer's expected-spend arithmetic makes a replayed charge (crash
// between the ledger fsync and the manifest append) a detected no-op,
// so the budget is never double-charged.
func (s *Supervisor) doCharge(ctx context.Context, w int) error {
	s.mu.Lock()
	budget := s.budget
	s.mu.Unlock()
	levels, eps, err := s.tree.ChargeWindow(ctx, s.led, w, budget)
	if err != nil {
		return err
	}
	return s.man.Append(ctx, Record{
		Window: w, State: StateCharged, Eps: eps, Levels: levels,
	})
}

// doPublish makes the staged release visible: window-NNNNNN.csv plus
// latest.csv, both atomic renames. The staged bytes are verified
// against the journalled checksum first; a missing or damaged staging
// file is rebuilt deterministically from the cut, and if even the
// rebuild disagrees with the journal the pipeline refuses — publishing
// unverified bytes is worse than stopping.
func (s *Supervisor) doPublish(ctx context.Context, w int) error {
	relRec, ok := s.man.Get(w, StateReleased)
	if !ok {
		return fmt.Errorf("%w: window %d has no released record", ErrManifestCorrupt, w)
	}
	rel, err := os.ReadFile(s.relPath(w))
	if err != nil || crc32.ChecksumIEEE(rel) != relRec.Checksum {
		cutRec, ok := s.man.Get(w, StateCut)
		if !ok {
			return fmt.Errorf("%w: window %d has no cut record", ErrManifestCorrupt, w)
		}
		if rel, err = s.sanitise(w, cutRec); err != nil {
			return err
		}
		if got := crc32.ChecksumIEEE(rel); got != relRec.Checksum {
			return fmt.Errorf("%w: window %d rebuilt release crc %08x != journalled %08x",
				ErrManifestCorrupt, w, got, relRec.Checksum)
		}
	}
	if err := resilience.Fire(ctx, resilience.FaultWindowPublish, w); err != nil {
		return err
	}
	for _, path := range []string{s.windowPath(w), s.latestPath()} {
		if err := resilience.AtomicWriteFile(ctx, path, func(wr io.Writer) error {
			_, werr := wr.Write(rel)
			return werr
		}); err != nil {
			return err
		}
	}
	return s.man.Append(ctx, Record{Window: w, State: StatePublished})
}

// doReload rings the serving tier's bell, journals completion, and
// sweeps the window's staging files. Re-notifying after a crash is
// harmless — stpt-serve's reload is idempotent — so the record lands
// only after a successful notify.
func (s *Supervisor) doReload(ctx context.Context, w int) error {
	if err := resilience.Fire(ctx, resilience.FaultReloadNotify, w); err != nil {
		return err
	}
	if s.cfg.Notifier != nil {
		if err := s.cfg.Notifier.Notify(ctx); err != nil {
			return err
		}
	}
	if err := s.man.Append(ctx, Record{Window: w, State: StateReloaded}); err != nil {
		return err
	}
	// Best-effort: the window is fully settled, its staging is garbage.
	os.Remove(s.cutPath(w))
	os.Remove(s.relPath(w))
	return nil
}

// SetBudget replaces the lifetime budget and clears the exhaustion
// latch, resuming a degraded pipeline on its next Step.
func (s *Supervisor) SetBudget(budget float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.budget = budget
	s.exhausted = false
}

// Status snapshots the supervisor.
func (s *Supervisor) Status() Status {
	s.mu.Lock()
	budget, exhausted, lastErr := s.budget, s.exhausted, s.lastErr
	s.mu.Unlock()
	published := 0
	for _, r := range s.man.Records() {
		if r.State == StatePublished {
			published++
		}
	}
	return Status{
		Dataset:         s.cfg.Dataset,
		LastWindow:      s.man.LastWindow(),
		State:           s.man.LastState(),
		Published:       published,
		Spent:           s.led.Spent(s.cfg.Dataset),
		Budget:          budget,
		BudgetExhausted: exhausted,
		LastError:       lastErr,
	}
}

// RunOnce steps until no further progress is possible — every covered
// window is published or the feed has not reached the next cut — and
// returns the first error. Budget exhaustion is returned (wrapping
// dp.ErrBudgetExhausted) so one-shot callers can exit distinctly.
func (s *Supervisor) RunOnce(ctx context.Context) error {
	for {
		advanced, err := s.Step(ctx)
		if err != nil || !advanced {
			return err
		}
	}
}

// Run supervises until ctx is cancelled, polling every interval when
// idle. Transient stage failures were already retried per the policy;
// anything still failing that is not a budget refusal stops Run — the
// journal makes a restart resume exactly where it stopped, so
// crash-only is the safe shape. Budget exhaustion degrades instead:
// the last good generation keeps serving, /readyz reports it, and a
// raised budget resumes the loop automatically.
func (s *Supervisor) Run(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		advanced, err := s.Step(ctx)
		switch {
		case err != nil && errors.Is(err, dp.ErrBudgetExhausted):
			fmt.Fprintf(os.Stderr, "pipeline: event=degraded reason=budget_exhausted detail=%q\n", err.Error())
		case err != nil:
			return err
		case advanced:
			continue // drain all ready work before sleeping
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}
