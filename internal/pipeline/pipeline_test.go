package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/dp"
	"repro/internal/ingest"
)

const (
	tpCx, tpCy, tpCt = 2, 2, 12
	tpWindow         = 3 // → 4 windows over tpCt
)

// feedCSV renders one deterministic reading per (x,y,t) cell up to (and
// excluding) interval tMax.
func feedCSV(tMax int) string {
	var sb strings.Builder
	for t := 0; t < tMax; t++ {
		for y := 0; y < tpCy; y++ {
			for x := 0; x < tpCx; x++ {
				fmt.Fprintf(&sb, "%d,%d,%d,%g\n", x, y, t, float64(1+x+2*y+4*t)/4)
			}
		}
	}
	return sb.String()
}

// newPipeline builds a full stack — ingester, ledger, manifest,
// supervisor — rooted at dir.
func newPipeline(t *testing.T, dir string, cfg Config) (*Supervisor, *ingest.Ingester) {
	t.Helper()
	in, err := ingest.New(ingest.Config{Cx: tpCx, Cy: tpCy, Ct: tpCt, BatchSize: 8},
		filepath.Join(dir, "feed.wal"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { in.Close() })
	led, err := dp.OpenLedger(filepath.Join(dir, "ledger"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { led.Close() })
	man, err := OpenManifest(filepath.Join(dir, "manifest"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { man.Close() })
	if cfg.Dataset == "" {
		cfg.Dataset = "stream"
	}
	if cfg.EpsNode == 0 {
		cfg.EpsNode = 0.5
	}
	if cfg.Window == 0 {
		cfg.Window = tpWindow
	}
	if cfg.OutDir == "" {
		cfg.OutDir = filepath.Join(dir, "out")
	}
	cfg.Seed = 42
	s, err := New(cfg, in, led, man)
	if err != nil {
		t.Fatal(err)
	}
	return s, in
}

func ingestCSV(t *testing.T, in *ingest.Ingester, csv string) {
	t.Helper()
	if _, _, err := in.Ingest(context.Background(), strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineEndToEnd drives a full stream through every lifecycle
// stage: all four windows publish, the notifier rings once per window,
// the spend is the tree bound, and latest.csv is the newest window.
func TestPipelineEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var notified atomic.Int64
	s, in := newPipeline(t, dir, Config{
		Notifier: NotifierFunc(func(context.Context) error { notified.Add(1); return nil }),
	})
	ingestCSV(t, in, feedCSV(tpCt))
	if err := s.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	st := s.Status()
	if st.Published != 4 || st.LastWindow != 4 || st.State != StateReloaded {
		t.Fatalf("status after run: %+v", st)
	}
	if notified.Load() != 4 {
		t.Fatalf("notifier rang %d times, want 4", notified.Load())
	}
	// 4 windows → 3 tree levels → ε = 3 · 0.5, nothing linear in n.
	if want := 1.5; st.Spent != want {
		t.Fatalf("spent %v, want %v", st.Spent, want)
	}
	for w := 1; w <= 4; w++ {
		if _, err := os.Stat(s.windowPath(w)); err != nil {
			t.Fatalf("window %d not published: %v", w, err)
		}
	}
	last, err := os.ReadFile(s.windowPath(4))
	if err != nil {
		t.Fatal(err)
	}
	latest, err := os.ReadFile(s.latestPath())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(last, latest) {
		t.Fatal("latest.csv is not the newest window")
	}
	// Settled windows' staging is swept.
	ents, err := os.ReadDir(filepath.Join(dir, "out", "staging"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("staging holds %d leftovers after completion", len(ents))
	}
	// Further runs are a no-op: the stream is fully published.
	if err := s.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := s.Status(); got.Published != 4 {
		t.Fatalf("idle re-run changed state: %+v", got)
	}
}

// TestPipelineDeterministicAcrossRuns: two independent stacks fed the
// same readings with the same seed publish byte-identical releases —
// the property crash recovery's redo-the-stage design rests on.
func TestPipelineDeterministicAcrossRuns(t *testing.T) {
	outs := make([][]byte, 2)
	for i := range outs {
		dir := t.TempDir()
		s, in := newPipeline(t, dir, Config{})
		ingestCSV(t, in, feedCSV(tpCt))
		if err := s.RunOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
		var all bytes.Buffer
		for w := 1; w <= 4; w++ {
			b, err := os.ReadFile(s.windowPath(w))
			if err != nil {
				t.Fatal(err)
			}
			all.Write(b)
		}
		outs[i] = all.Bytes()
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatal("same feed + same seed produced different releases")
	}
}

// TestPipelineWaitsForWindowData: windows cut only when their whole
// span is durably ingested; the rest of the stream publishes later.
func TestPipelineWaitsForWindowData(t *testing.T) {
	s, in := newPipeline(t, t.TempDir(), Config{})
	ctx := context.Background()

	// Feed through t=5: windows 1 ([0,3)) and 2 ([3,6)) are coverable.
	ingestCSV(t, in, feedCSV(6))
	if err := s.RunOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if st := s.Status(); st.Published != 2 {
		t.Fatalf("published %d windows on a half-fed stream, want 2", st.Published)
	}
	if _, err := os.Stat(s.windowPath(3)); err == nil {
		t.Fatal("window 3 published before its data arrived")
	}

	ingestCSV(t, in, feedCSV(tpCt)[len(feedCSV(6)):])
	if err := s.RunOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if st := s.Status(); st.Published != 4 {
		t.Fatalf("published %d windows after the full feed, want 4", st.Published)
	}
}

// TestPipelineBudgetExhaustionDegradesAndResumes is the graceful-
// degradation acceptance: an exhausted budget stops new publications
// (typed error, /readyz 503) while everything already published stays;
// raising the budget over /-/budget resumes exactly where it stopped.
func TestPipelineBudgetExhaustionDegradesAndResumes(t *testing.T) {
	dir := t.TempDir()
	// ε_node = 0.5, budget = 1.0: windows 1–3 need levels 0 and 1
	// (ε = 1.0); window 4 opens level 2 and must be refused.
	s, in := newPipeline(t, dir, Config{Budget: 1.0})
	ingestCSV(t, in, feedCSV(tpCt))
	ctx := context.Background()

	err := s.RunOnce(ctx)
	if !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Fatalf("RunOnce on a tight budget: %v, want ErrBudgetExhausted", err)
	}
	st := s.Status()
	if !st.BudgetExhausted || st.Published != 3 {
		t.Fatalf("degraded status: %+v, want 3 published + exhausted", st)
	}
	// Published windows keep serving: the files are intact.
	for w := 1; w <= 3; w++ {
		if _, err := os.Stat(s.windowPath(w)); err != nil {
			t.Fatalf("window %d vanished on degradation: %v", w, err)
		}
	}

	// The HTTP surface reports and repairs the condition.
	ts := httptest.NewServer(Handler(s, HandlerConfig{Token: "sesame"}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready Status
	json.NewDecoder(resp.Body).Decode(&ready)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !ready.BudgetExhausted {
		t.Fatalf("readyz while exhausted: %d %+v, want 503 + budget_exhausted", resp.StatusCode, ready)
	}

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/-/budget", strings.NewReader(`{"budget": 2.0}`))
	req.Header.Set("Authorization", "Bearer sesame")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /-/budget: %d", resp.StatusCode)
	}

	// The raised budget resumes the pending charge automatically.
	if err := s.RunOnce(ctx); err != nil {
		t.Fatal(err)
	}
	st = s.Status()
	if st.Published != 4 || st.BudgetExhausted {
		t.Fatalf("status after raise: %+v, want 4 published", st)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after resume: %d, want 200", resp.StatusCode)
	}
}

// TestPipelineBudgetEndpointAuth: /-/budget refuses unauthenticated and
// non-POST callers outright.
func TestPipelineBudgetEndpointAuth(t *testing.T) {
	s, _ := newPipeline(t, t.TempDir(), Config{})
	ts := httptest.NewServer(Handler(s, HandlerConfig{Token: "sesame"}))
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/-/budget"); err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /-/budget: %v %d", err, resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/-/budget", "application/json", strings.NewReader(`{"budget": 9}`))
	if err != nil || resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unauthenticated POST: %v %d", err, resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/-/budget", strings.NewReader(`{"nope": 1}`))
	req.Header.Set("Authorization", "Bearer sesame")
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %v %d", err, resp.StatusCode)
	}
}
