package pipeline

import (
	"crypto/subtle"
	"encoding/json"
	"net/http"
	"strings"
)

// HandlerConfig wires a Supervisor into an HTTP surface.
type HandlerConfig struct {
	// Token guards the mutating endpoints (bearer auth); empty disables
	// auth, which is only sane on localhost.
	Token string
	// Ingest, when non-nil, answers every path the pipeline mux does
	// not claim — typically ingest.Handler, so one listener serves both
	// the feed (/ingest, /stats, /-/compact) and the supervisor.
	Ingest http.Handler
	// Integrity, when non-nil, feeds the at-rest scrubber's latched
	// corrupt set into /readyz: a daemon sitting on damaged journals or
	// releases reports "corrupt" instead of publishing onward from them.
	Integrity interface{ CorruptArtifacts() []string }
	// Metrics, when non-nil, is mounted at /metrics (typically a
	// metrics.Registry handler carrying the scrub counters).
	Metrics http.Handler
}

// Handler exposes the supervisor over HTTP:
//
//	GET  /healthz    liveness
//	GET  /readyz     readiness: 503 while the budget is exhausted (the
//	                 last good generation keeps serving, but no new
//	                 windows will publish until the budget is raised)
//	GET  /status     full supervisor snapshot
//	POST /-/budget   {"budget": ε} — raise (or lower) the lifetime
//	                 budget; raising it resumes a degraded pipeline
//
// plus whatever cfg.Ingest serves underneath.
func Handler(s *Supervisor, cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Integrity != nil {
			if corrupt := cfg.Integrity.CorruptArtifacts(); len(corrupt) > 0 {
				writeJSON(w, http.StatusServiceUnavailable, map[string]any{
					"status":    "corrupt",
					"artifact":  corrupt[0],
					"artifacts": corrupt,
					"pipeline":  s.Status(),
				})
				return
			}
		}
		st := s.Status()
		if st.BudgetExhausted {
			writeJSON(w, http.StatusServiceUnavailable, st)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Status())
	})
	mux.HandleFunc("/-/budget", func(w http.ResponseWriter, r *http.Request) {
		if !authorised(w, r, cfg.Token) {
			return
		}
		var body struct {
			Budget *float64 `json:"budget"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Budget == nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": `body must be {"budget": <ε>}`})
			return
		}
		s.SetBudget(*body.Budget)
		writeJSON(w, http.StatusOK, map[string]any{"budget": *body.Budget})
	})
	if cfg.Metrics != nil {
		mux.Handle("/metrics", cfg.Metrics)
	}
	if cfg.Ingest != nil {
		mux.Handle("/", cfg.Ingest)
	}
	return mux
}

// authorised enforces method and bearer-token auth for the pipeline's
// mutating endpoints, mirroring the ingest daemon's discipline.
func authorised(w http.ResponseWriter, r *http.Request, token string) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, map[string]any{"error": "POST required"})
		return false
	}
	if token == "" {
		return true
	}
	got := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
	if subtle.ConstantTimeCompare([]byte(got), []byte(token)) != 1 {
		writeJSON(w, http.StatusForbidden, map[string]any{"error": "missing or invalid bearer token"})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
