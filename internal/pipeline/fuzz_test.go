package pipeline

import (
	"fmt"
	"hash/crc32"
	"math"
	"testing"
)

// FuzzManifestDecode hammers the line parser recovery trusts: no input
// may panic it, and anything it accepts must be a structurally valid
// record — recovery builds the resume decision on these fields, so a
// parser that lets garbage through corrupts the pipeline's idea of
// which windows really published.
func FuzzManifestDecode(f *testing.F) {
	valid := func(doc string) string {
		return fmt.Sprintf("%08x %s", crc32.ChecksumIEEE([]byte(doc)), doc)
	}
	f.Add([]byte(valid(`{"seq":1,"window":1,"state":"cut","t0":0,"t1":4,"seed":42}`)))
	f.Add([]byte(valid(`{"seq":2,"window":1,"state":"released","crc":305419896}`)))
	f.Add([]byte(valid(`{"seq":3,"window":1,"state":"charged","eps":0.5,"levels":[0]}`)))
	f.Add([]byte(valid(`{"seq":4,"window":1,"state":"published"}`)))
	f.Add([]byte(valid(`{"seq":5,"window":1,"state":"reloaded"}`)))
	// Torn tail: a prefix of a valid line.
	f.Add([]byte(valid(`{"seq":1,"window":1,"state":"cut","t0":0,"t1":4}`)[:20]))
	// Interior corruption: right checksum, flipped body byte.
	f.Add([]byte(`deadbeef {"seq":1,"window":1,"state":"cut","t0":0,"t1":4}`))
	f.Add([]byte(""))
	f.Add([]byte("00000000 "))
	f.Add([]byte(valid(`{"seq":-1,"window":0,"state":"warp","eps":-5}`)))

	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := DecodeLine(line)
		if err != nil {
			return
		}
		if _, known := stateOrder[rec.State]; !known {
			t.Fatalf("accepted unknown state %q from %q", rec.State, line)
		}
		if rec.Seq < 1 || rec.Window < 1 {
			t.Fatalf("accepted seq=%d window=%d from %q", rec.Seq, rec.Window, line)
		}
		if rec.Eps < 0 || math.IsNaN(rec.Eps) || math.IsInf(rec.Eps, 0) {
			t.Fatalf("accepted ε=%v from %q", rec.Eps, line)
		}
		if rec.State == StateCut && rec.T1 <= rec.T0 {
			t.Fatalf("accepted empty cut span [%d,%d) from %q", rec.T0, rec.T1, line)
		}
	})
}
