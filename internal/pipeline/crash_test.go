package pipeline

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dp"
	"repro/internal/ingest"
	"repro/internal/resilience"
)

// Exactly-once under SIGKILL: a child process runs the supervisor over
// a known feed, stalls at one lifecycle transition (a fault point fires
// either mid-stage or just before the stage's manifest record), and the
// parent SIGKILLs it there — a real crash. The parent then recovers
// in-process and asserts the finished pipeline is byte-identical to a
// never-crashed golden run: every window file, latest.csv, the manifest
// journal, and the ledger — which proves no window was lost, none
// published twice, and the budget never double-charged, at every single
// transition of the state machine.

const (
	pipeCrashChildEnv = "STPT_PIPELINE_CRASH_CHILD"
	pipeCrashDirEnv   = "STPT_PIPELINE_CRASH_DIR"
	pipeCrashWindows  = 4 // tpCt / tpWindow
)

// pipeCrashConfig is the fixed supervisor config every run — child,
// golden, and recovery — uses, so their outputs are comparable.
func pipeCrashConfig(dir string) Config {
	return Config{
		Dataset: "stream",
		OutDir:  filepath.Join(dir, "out"),
		Window:  tpWindow,
		EpsNode: 0.5,
		Seed:    42,
	}
}

// buildCrashStack assembles the full pipeline stack in dir. feed=true
// ingests the deterministic stream (a fresh run); feed=false relies on
// WAL replay alone — what a real recovery does, since re-sending the
// feed would double-count every reading.
func buildCrashStack(ctx context.Context, dir string, feed bool) (*Supervisor, func(), error) {
	in, err := ingest.New(ingest.Config{Cx: tpCx, Cy: tpCy, Ct: tpCt, BatchSize: 8},
		filepath.Join(dir, "feed.wal"))
	if err != nil {
		return nil, nil, err
	}
	if feed {
		if _, _, err := in.Ingest(ctx, strings.NewReader(feedCSV(tpCt))); err != nil {
			in.Close()
			return nil, nil, err
		}
	}
	led, err := dp.OpenLedger(filepath.Join(dir, "ledger"))
	if err != nil {
		in.Close()
		return nil, nil, err
	}
	man, err := OpenManifest(filepath.Join(dir, "manifest"))
	if err != nil {
		in.Close()
		led.Close()
		return nil, nil, err
	}
	s, err := New(pipeCrashConfig(dir), in, led, man)
	if err != nil {
		in.Close()
		led.Close()
		man.Close()
		return nil, nil, err
	}
	cleanup := func() { man.Close(); led.Close(); in.Close() }
	return s, cleanup, nil
}

// TestPipelineCrashChild is the re-exec target; a no-op unless the
// parent set the mode env var.
func TestPipelineCrashChild(t *testing.T) {
	mode := os.Getenv(pipeCrashChildEnv)
	if mode == "" {
		t.Skip("re-exec helper; run via TestPipelineKillRecover")
	}
	dir := os.Getenv(pipeCrashDirEnv)
	marker := filepath.Join(dir, "stalled")
	stall := func() error {
		if err := os.WriteFile(marker, []byte("stalled\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "marker:", err)
			os.Exit(3)
		}
		select {} // wait for the parent's SIGKILL
	}
	stallAtWindow2 := func(_ context.Context, payload any) error {
		if payload.(int) == 2 {
			return stall()
		}
		return nil
	}

	inj := resilience.NewInjector()
	switch mode {
	case "mid-cut":
		// Window 2's sub-matrix is cut, nothing staged or journalled yet.
		inj.On(resilience.FaultWindowCut, stallAtWindow2)
	case "mid-release-write":
		// The sanitised release is in its commit window: temp file durable,
		// rename to staging pending.
		inj.On(resilience.FaultAtomicRename, func(_ context.Context, payload any) error {
			if strings.Contains(payload.(string), "window-000002.rel") {
				return stall()
			}
			return nil
		})
	case "mid-charge":
		// Window 2's tree charge (level 1 → ledger seq 2) is written but
		// not yet fsynced: the classic double-charge window.
		inj.On(resilience.FaultLedgerAppend, func(_ context.Context, payload any) error {
			if payload.(int) == 2 {
				return stall()
			}
			return nil
		})
	case "mid-publish":
		// Charge durable, window file not yet visible.
		inj.On(resilience.FaultWindowPublish, stallAtWindow2)
	case "mid-reload":
		// Published but the serving tier was never told.
		inj.On(resilience.FaultReloadNotify, stallAtWindow2)
	case "before-cut-record", "before-released-record", "before-charged-record",
		"before-published-record", "before-reloaded-record":
		// The stage's side effect is durable; its manifest record is not.
		state := State(strings.TrimSuffix(strings.TrimPrefix(mode, "before-"), "-record"))
		inj.On(resilience.FaultManifestAppend, func(_ context.Context, payload any) error {
			rec := payload.(*Record)
			if rec.Window == 2 && rec.State == state {
				return stall()
			}
			return nil
		})
	default:
		fmt.Fprintln(os.Stderr, "unknown crash mode", mode)
		os.Exit(3)
	}
	ctx := resilience.WithInjector(context.Background(), inj)

	s, cleanup, err := buildCrashStack(ctx, dir, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "child stack:", err)
		os.Exit(3)
	}
	defer cleanup()
	err = s.RunOnce(ctx)
	fmt.Fprintln(os.Stderr, "child ran to completion without stalling, RunOnce:", err)
	os.Exit(3)
}

// killAtTransition re-execs the child in the given mode, waits for the
// stall marker, and SIGKILLs it.
func killAtTransition(t *testing.T, dir, mode string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestPipelineCrashChild$")
	cmd.Env = append(os.Environ(), pipeCrashChildEnv+"="+mode, pipeCrashDirEnv+"="+dir)
	var childLog bytes.Buffer
	cmd.Stdout, cmd.Stderr = &childLog, &childLog
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	marker := filepath.Join(dir, "stalled")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(marker); err == nil {
			break
		}
		select {
		case err := <-done:
			t.Fatalf("child exited before stalling (%v)\n%s", err, childLog.String())
		default:
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("child never reached the fault point\n%s", childLog.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-done
}

// goldenArtifacts captures everything exactly-once recovery must
// reproduce byte-for-byte.
type goldenArtifacts struct {
	files map[string][]byte // window files + latest.csv + manifest + ledger
	spent uint64            // Float64bits of the ledger spend
}

// captureArtifacts reads a finished pipeline directory.
func captureArtifacts(t *testing.T, dir string) goldenArtifacts {
	t.Helper()
	g := goldenArtifacts{files: map[string][]byte{}}
	names := []string{"manifest", "ledger", filepath.Join("out", "latest.csv")}
	for w := 1; w <= pipeCrashWindows; w++ {
		names = append(names, filepath.Join("out", fmt.Sprintf("window-%06d.csv", w)))
	}
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("capturing %s: %v", name, err)
		}
		g.files[name] = b
	}
	led, err := dp.OpenLedger(filepath.Join(dir, "ledger"))
	if err != nil {
		t.Fatal(err)
	}
	g.spent = math.Float64bits(led.Spent("stream"))
	led.Close()
	return g
}

// TestPipelineKillRecover is the acceptance suite: SIGKILL at every
// lifecycle transition, recover, finish, and demand byte-identical
// artifacts against a never-crashed run.
func TestPipelineKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}

	// Golden: a clean, uninterrupted run.
	goldenDir := t.TempDir()
	s, cleanup, err := buildCrashStack(context.Background(), goldenDir, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunOnce(context.Background()); err != nil {
		cleanup()
		t.Fatal(err)
	}
	cleanup()
	golden := captureArtifacts(t, goldenDir)
	// Sanity: the tree spend for 4 windows is 3 levels · ε_node.
	if want := math.Float64bits(1.5); golden.spent != want {
		t.Fatalf("golden spend bits %x, want %x", golden.spent, want)
	}

	modes := []string{
		"mid-cut", "before-cut-record",
		"mid-release-write", "before-released-record",
		"mid-charge", "before-charged-record",
		"mid-publish", "before-published-record",
		"mid-reload", "before-reloaded-record",
	}
	for _, mode := range modes {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			killAtTransition(t, dir, mode)

			// Recover in-process: reopen every layer over the killed
			// child's files and drive the stream to completion.
			re, recleanup, err := buildCrashStack(context.Background(), dir, false)
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer recleanup()
			if err := re.RunOnce(context.Background()); err != nil {
				t.Fatalf("recovery run: %v", err)
			}
			st := re.Status()
			if st.Published != pipeCrashWindows || st.State != StateReloaded {
				t.Fatalf("recovered status: %+v", st)
			}

			got := captureArtifacts(t, dir)
			if got.spent != golden.spent {
				t.Fatalf("recovered spend bits %x != golden %x — the budget was double- or under-charged",
					got.spent, golden.spent)
			}
			for name, want := range golden.files {
				if !bytes.Equal(got.files[name], want) {
					t.Errorf("%s differs from the golden run after crash recovery", name)
				}
			}
			// Staging swept: every window completed.
			ents, err := os.ReadDir(filepath.Join(dir, "out", "staging"))
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				// The killed child may leave an orphaned temp file from the
				// very write it died inside; those are debris, not releases.
				if !strings.Contains(e.Name(), ".tmp-") {
					t.Errorf("staging leftover %s after full recovery", e.Name())
				}
			}
		})
	}
}
