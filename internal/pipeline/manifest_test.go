package pipeline

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/resilience"
)

// walk appends window w's full lifecycle to m.
func walk(t *testing.T, m *Manifest, w int) {
	t.Helper()
	ctx := context.Background()
	recs := []Record{
		{Window: w, State: StateCut, T0: (w - 1) * 4, T1: w * 4, Seed: int64(w)},
		{Window: w, State: StateReleased, Checksum: uint32(w)},
		{Window: w, State: StateCharged, Eps: 0.5},
		{Window: w, State: StatePublished},
		{Window: w, State: StateReloaded},
	}
	for _, r := range recs {
		if err := m.Append(ctx, r); err != nil {
			t.Fatalf("append (%d,%s): %v", r.Window, r.State, err)
		}
	}
}

func TestManifestRoundTripAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest")
	m, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	walk(t, m, 1)
	walk(t, m, 2)
	if err := m.Append(context.Background(), Record{Window: 3, State: StateCut, T0: 8, T1: 12, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	m.Close()

	re, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 11 || re.LastWindow() != 3 || re.LastState() != StateCut {
		t.Fatalf("reopened: len=%d window=%d state=%s", re.Len(), re.LastWindow(), re.LastState())
	}
	cut, ok := re.Get(3, StateCut)
	if !ok || cut.T0 != 8 || cut.T1 != 12 || cut.Seed != 3 {
		t.Fatalf("Get(3, cut) = %+v, %v", cut, ok)
	}
	if rel, ok := re.Get(2, StateReleased); !ok || rel.Checksum != 2 {
		t.Fatalf("Get(2, released) = %+v, %v", rel, ok)
	}
	if _, ok := re.Get(3, StateReleased); ok {
		t.Fatal("phantom released record for window 3")
	}
	// Sequence numbers are gapless in append order.
	for i, r := range re.Records() {
		if r.Seq != i+1 {
			t.Fatalf("record %d carries seq %d", i, r.Seq)
		}
	}
}

// TestManifestRefusesIllegalTransitions pins the state machine: the
// journal only ever accepts the exact next lifecycle step.
func TestManifestRefusesIllegalTransitions(t *testing.T) {
	ctx := context.Background()
	m, err := OpenManifest(filepath.Join(t.TempDir(), "manifest"))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// First record must be window 1's cut.
	for _, bad := range []Record{
		{Window: 1, State: StateReleased},
		{Window: 2, State: StateCut, T0: 0, T1: 4},
	} {
		if err := m.Append(ctx, bad); err == nil {
			t.Fatalf("empty journal accepted (%d,%s)", bad.Window, bad.State)
		}
	}
	if err := m.Append(ctx, Record{Window: 1, State: StateCut, T0: 0, T1: 4}); err != nil {
		t.Fatal(err)
	}
	// From (1, cut) only (1, released) is legal.
	for _, bad := range []Record{
		{Window: 1, State: StateCut, T0: 0, T1: 4}, // repeat
		{Window: 1, State: StateCharged},           // skip
		{Window: 2, State: StateCut, T0: 4, T1: 8}, // next window too early
	} {
		if err := m.Append(ctx, bad); err == nil {
			t.Fatalf("after (1,cut) accepted (%d,%s)", bad.Window, bad.State)
		}
	}
	if m.Len() != 1 {
		t.Fatalf("refused appends changed the journal: len=%d", m.Len())
	}
}

// TestManifestTornTailTruncated: a crash mid-append leaves a torn final
// line; open drops it and the journal resumes from the previous record.
func TestManifestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest")
	m, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	walk(t, m, 1)
	m.Close()

	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A half-written next record, no terminating newline.
	if err := os.WriteFile(path, append(append([]byte{}, pristine...), []byte("deadbeef {\"seq\":6,\"win")...), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenManifest(path)
	if err != nil {
		t.Fatalf("torn tail refused: %v", err)
	}
	if re.Len() != 5 || re.LastState() != StateReloaded {
		t.Fatalf("after torn tail: len=%d state=%s", re.Len(), re.LastState())
	}
	// The truncation is durable: the file is byte-identical to pristine.
	re.Close()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(pristine) {
		t.Fatal("torn tail not healed back to the durable prefix")
	}
}

// TestManifestInteriorCorruptionRefused: damage anywhere but the tail
// is not a crash artefact — it refuses with ErrManifestCorrupt.
func TestManifestInteriorCorruptionRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest")
	m, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	walk(t, m, 1)
	m.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	// Flip a byte inside the second record's JSON.
	lines[1] = strings.Replace(lines[1], "released", "relXased", 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenManifest(path); !errors.Is(err, ErrManifestCorrupt) {
		t.Fatalf("interior corruption opened: %v", err)
	}

	// A sequence gap refuses too: drop the middle record entirely.
	spliced := append([]string{}, lines[:1]...)
	orig := strings.SplitAfter(string(raw), "\n")
	spliced = append(spliced, orig[2:]...)
	if err := os.WriteFile(path, []byte(strings.Join(spliced, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenManifest(path); !errors.Is(err, ErrManifestCorrupt) {
		t.Fatalf("sequence gap opened: %v", err)
	}
}

// TestManifestPoisonedOnFailedSync: a failed fsync makes the durable
// state unknowable; the manifest must refuse every further append until
// a reopen re-reads the file.
func TestManifestPoisonedOnFailedSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest")
	m, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	boom := errors.New("simulated EIO on fsync")
	fails := true
	inj := resilience.NewInjector().On(resilience.FaultSyncEIO, func(context.Context, any) error {
		if fails {
			return boom
		}
		return nil
	})
	ctx := resilience.WithInjector(context.Background(), inj)

	err = m.Append(ctx, Record{Window: 1, State: StateCut, T0: 0, T1: 4})
	if !errors.Is(err, ErrManifestPoisoned) || !errors.Is(err, boom) {
		t.Fatalf("failed sync: %v", err)
	}
	// Poisoned: even a clean append refuses now.
	fails = false
	if err := m.Append(ctx, Record{Window: 1, State: StateCut, T0: 0, T1: 4}); !errors.Is(err, ErrManifestPoisoned) {
		t.Fatalf("append after poisoning: %v", err)
	}
	// A reopen recovers: the unsynced line is dropped or, if it made it
	// to disk, is a valid first record — either way the journal opens.
	re, err := OpenManifest(path)
	if err != nil {
		t.Fatalf("reopen after poisoning: %v", err)
	}
	defer re.Close()
	if err := re.Append(context.Background(), nextRecord(re)); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

// nextRecord builds the legal next record for m's tip, for tests that
// only care that an append succeeds.
func nextRecord(m *Manifest) Record {
	w, st := m.LastWindow(), m.LastState()
	switch {
	case w == 0:
		return Record{Window: 1, State: StateCut, T0: 0, T1: 4}
	case st == StateReloaded:
		return Record{Window: w + 1, State: StateCut, T0: w * 4, T1: (w + 1) * 4}
	default:
		r := Record{Window: w, State: st.next()}
		if r.State == StateCut {
			r.T0, r.T1 = 0, 4
		}
		return r
	}
}

// TestManifestDecodeLineRejectsGarbage spot-checks the line parser the
// fuzz target hammers.
func TestManifestDecodeLineRejectsGarbage(t *testing.T) {
	good := `{"seq":1,"window":1,"state":"cut","t0":0,"t1":4}`
	okLine := func(doc string) string {
		return fmt.Sprintf("%08x %s", crc32.ChecksumIEEE([]byte(doc)), doc)
	}
	if _, err := DecodeLine([]byte(okLine(good))); err != nil {
		t.Fatalf("valid line refused: %v", err)
	}
	for name, line := range map[string]string{
		"no separator": "deadbeef",
		"bad checksum": "00000000 " + good,
		"not hex":      "zzzzzzzz " + good,
		"not json":     okLine("{nope"),
		"bad state":    okLine(`{"seq":1,"window":1,"state":"warp","t0":0,"t1":4}`),
		"zero window":  okLine(`{"seq":1,"window":0,"state":"cut","t0":0,"t1":4}`),
		"zero seq":     okLine(`{"seq":0,"window":1,"state":"cut","t0":0,"t1":4}`),
		"empty span":   okLine(`{"seq":1,"window":1,"state":"cut","t0":4,"t1":4}`),
		"negative eps": okLine(`{"seq":1,"window":1,"state":"charged","eps":-1}`),
		"infinite eps": okLine(`{"seq":1,"window":1,"state":"charged","eps":1e999}`),
	} {
		if _, err := DecodeLine([]byte(line)); err == nil {
			t.Errorf("%s accepted: %q", name, line)
		}
	}
}
