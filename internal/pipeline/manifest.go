// Package pipeline is the supervised continual-release loop: it drives
// the ingest WAL through windowed STPT-style sanitisation, tree-composed
// ledger charging, atomic publication, and query-daemon reload as one
// long-running process that survives SIGKILL at any instant.
//
// The heart of the package is the window manifest — a crash-safe,
// append-only journal (same checksummed-line discipline as dp.Ledger)
// recording each window's progress through the fixed lifecycle
//
//	cut → released → charged → published → reloaded
//
// Every stage makes its side effect durable strictly *before* its
// manifest record is appended, so the journal never claims work that
// did not happen. Recovery therefore reads the last record and resumes
// from the exact next step: a window is never lost, never published
// twice, and never charged twice — the stages themselves are idempotent
// (deterministic noise from a recorded seed, expected-spend arithmetic
// in dp.TreeComposer, byte-identical atomic rewrites), so redoing the
// step a crash interrupted converges on the same bytes.
package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/resilience"
)

// State is one step of a window's fixed lifecycle.
type State string

// The lifecycle, in order. Each state's record is appended only after
// the state's side effect is durable:
//
//	StateCut       the window's raw sub-matrix is frozen in staging
//	StateReleased  the sanitised (noised) release is staged + checksummed
//	StateCharged   the tree-composed ε charge is fsynced in the ledger
//	StatePublished the release is atomically visible in the output dir
//	StateReloaded  the query daemon was told (or nothing listens)
const (
	StateCut       State = "cut"
	StateReleased  State = "released"
	StateCharged   State = "charged"
	StatePublished State = "published"
	StateReloaded  State = "reloaded"
)

// stateOrder gives the lifecycle position of each state; successor
// states differ by exactly one.
var stateOrder = map[State]int{
	StateCut: 0, StateReleased: 1, StateCharged: 2, StatePublished: 3, StateReloaded: 4,
}

// next returns the state following s, or "" from the terminal state.
func (s State) next() State {
	switch s {
	case StateCut:
		return StateReleased
	case StateReleased:
		return StateCharged
	case StateCharged:
		return StatePublished
	case StatePublished:
		return StateReloaded
	}
	return ""
}

// Record is one manifest line: window w reached State. The optional
// fields carry exactly what recovery needs to redo the *next* stage
// deterministically — the cut's time span and noise seed, the staged
// release's checksum, the charge's arithmetic.
type Record struct {
	Seq    int   `json:"seq"`
	Window int   `json:"window"`
	State  State `json:"state"`
	// T0, T1 (cut records): the window's half-open interval span.
	T0 int `json:"t0,omitempty"`
	T1 int `json:"t1,omitempty"`
	// Seed (cut records): the deterministic noise seed frozen at cut
	// time, so a release redone after a crash is bit-identical.
	Seed int64 `json:"seed,omitempty"`
	// Checksum (released records): CRC-32 of the staged release bytes,
	// letting publish verify it ships exactly what was sanitised.
	Checksum uint32 `json:"crc,omitempty"`
	// Eps and Levels (charged records): the audit trail of the tree
	// charge — ε added and which tree levels were opened.
	Eps    float64 `json:"eps,omitempty"`
	Levels []int   `json:"levels,omitempty"`
}

// ErrManifestPoisoned marks a manifest whose last fsync failed: the
// durable state is unknowable through the live handle, so every further
// append is refused until a restart re-reads the file.
var ErrManifestPoisoned = errors.New("pipeline: manifest poisoned by a failed fsync")

// ErrManifestCorrupt wraps any interior damage found at open time —
// checksum mismatch, sequence gap, or an impossible state transition.
// Unlike a torn tail, corruption is never self-healed: the supervisor
// must refuse to run rather than guess which windows really published.
var ErrManifestCorrupt = errors.New("pipeline: manifest corrupt")

// Manifest is the durable window-lifecycle journal. On-disk format is
// one record per line, `<crc32-hex> <json>\n`, exactly the ledger's
// discipline: a torn final line (the only damage an fsynced append-only
// file can suffer) is truncated on open; anything else refuses.
type Manifest struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	recs   []Record
	end    int64 // durable end offset, for append self-heal
	broken bool
}

// OpenManifest loads (or creates) the manifest at path, verifying every
// line's checksum, the gapless sequence, and the lifecycle state
// machine, truncating a torn final line.
func OpenManifest(path string) (*Manifest, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pipeline: opening manifest: %w", err)
	}
	m := &Manifest{path: path, f: f}
	if err := m.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return m, nil
}

func (m *Manifest) recover() error {
	raw, err := os.ReadFile(m.path)
	if err != nil {
		return fmt.Errorf("pipeline: reading manifest: %w", err)
	}
	recs, durable, err := ScanManifest(m.path, raw)
	if err != nil {
		return err
	}
	m.recs = recs
	off := durable
	if off < int64(len(raw)) {
		if err := m.f.Truncate(off); err != nil {
			return fmt.Errorf("pipeline: truncating torn manifest tail: %w", err)
		}
		if err := m.f.Sync(); err != nil {
			return fmt.Errorf("pipeline: syncing truncated manifest: %w", err)
		}
	}
	if _, err := m.f.Seek(off, 0); err != nil {
		return err
	}
	m.end = off
	return nil
}

// ScanManifest validates raw manifest bytes strictly read-only — the
// exact rules recovery enforces (checksums, gapless sequence, legal
// lifecycle transitions, tolerated torn tail) with no truncation and no
// file handle, so fsck and the background scrubber can audit a live
// daemon's journal without racing its appends. It returns the valid
// records in append order and the durable offset after the last valid
// line; an offset short of len(raw) is the tolerated torn tail. Interior
// damage returns an error wrapping ErrManifestCorrupt naming the line.
// path is used only for error messages.
func ScanManifest(path string, raw []byte) ([]Record, int64, error) {
	var recs []Record
	off := 0
	for lineNo := 1; off < len(raw); lineNo++ {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break // torn tail: append cut mid-line
		}
		line := raw[off : off+nl]
		rec, perr := DecodeLine(line)
		if perr != nil {
			if off+nl+1 == len(raw) {
				// Complete-looking final line failing its checksum: the crash
				// landed after the newline but before the body was durable.
				break
			}
			return nil, 0, fmt.Errorf("%w: %s line %d: %v", ErrManifestCorrupt, path, lineNo, perr)
		}
		if want := len(recs) + 1; rec.Seq != want {
			return nil, 0, fmt.Errorf("%w: %s line %d: sequence %d, want %d (records missing or reordered)",
				ErrManifestCorrupt, path, lineNo, rec.Seq, want)
		}
		var tip *Record
		if len(recs) > 0 {
			tip = &recs[len(recs)-1]
		}
		if err := validAfter(tip, rec); err != nil {
			return nil, 0, fmt.Errorf("%w: %s line %d: %v", ErrManifestCorrupt, path, lineNo, err)
		}
		recs = append(recs, rec)
		off += nl + 1
	}
	return recs, int64(off), nil
}

// DecodeLine validates one manifest line `<crc32-hex> <json>` and
// decodes its record. Exported so the fuzz target exercises exactly the
// parser recovery trusts.
func DecodeLine(line []byte) (Record, error) {
	var rec Record
	sumHex, doc, ok := strings.Cut(string(line), " ")
	if !ok {
		return rec, errors.New("no checksum separator")
	}
	sum, err := strconv.ParseUint(sumHex, 16, 32)
	if err != nil {
		return rec, fmt.Errorf("bad checksum field %q", sumHex)
	}
	if crc32.ChecksumIEEE([]byte(doc)) != uint32(sum) {
		return rec, errors.New("checksum mismatch")
	}
	if err := json.Unmarshal([]byte(doc), &rec); err != nil {
		return rec, fmt.Errorf("checksummed record does not decode: %w", err)
	}
	if _, known := stateOrder[rec.State]; !known {
		return rec, fmt.Errorf("unknown lifecycle state %q", rec.State)
	}
	if rec.Seq < 1 || rec.Window < 1 {
		return rec, fmt.Errorf("record carries seq=%d window=%d (both are 1-based)", rec.Seq, rec.Window)
	}
	if rec.Eps < 0 || math.IsNaN(rec.Eps) || math.IsInf(rec.Eps, 0) {
		return rec, fmt.Errorf("record carries invalid ε=%v", rec.Eps)
	}
	if rec.State == StateCut && (rec.T0 < 0 || rec.T1 <= rec.T0) {
		return rec, fmt.Errorf("cut record carries empty span [%d,%d)", rec.T0, rec.T1)
	}
	return rec, nil
}

// validAfter checks that rec legally follows the journal tip (nil on an
// empty journal). The lifecycle is strictly sequential: the first record
// is window 1's cut; after (w, s) comes (w, next(s)), or (w+1, cut) once
// w has reached the terminal state. Shared by live appends and the
// read-only scan so an audit enforces exactly what recovery would.
func validAfter(tip *Record, rec Record) error {
	if tip == nil {
		if rec.Window != 1 || rec.State != StateCut {
			return fmt.Errorf("first record is (window %d, %s), want (window 1, %s)", rec.Window, rec.State, StateCut)
		}
		return nil
	}
	if tip.State == StateReloaded {
		if rec.Window != tip.Window+1 || rec.State != StateCut {
			return fmt.Errorf("after window %d completed, got (window %d, %s), want (window %d, %s)",
				tip.Window, rec.Window, rec.State, tip.Window+1, StateCut)
		}
		return nil
	}
	if rec.Window != tip.Window || rec.State != tip.State.next() {
		return fmt.Errorf("after (window %d, %s), got (window %d, %s), want (window %d, %s)",
			tip.Window, tip.State, rec.Window, rec.State, tip.Window, tip.State.next())
	}
	return nil
}

// Append durably journals rec (Seq is assigned here), validating the
// lifecycle transition first. Like the ledger, a record only counts
// once its fsync returned success; a failed plain write heals the torn
// tail and stays usable, a failed fsync poisons.
func (m *Manifest) Append(ctx context.Context, rec Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken {
		return fmt.Errorf("%w (%s)", ErrManifestPoisoned, m.path)
	}
	var tip *Record
	if len(m.recs) > 0 {
		tip = &m.recs[len(m.recs)-1]
	}
	if err := validAfter(tip, rec); err != nil {
		return fmt.Errorf("pipeline: manifest refuses %v", err)
	}
	rec.Seq = len(m.recs) + 1
	// Fault window: the stage's side effect is durable, its record is
	// not. A SIGKILL here must make recovery redo the stage (reaching
	// the same bytes) and then append this same record.
	if err := resilience.Fire(ctx, resilience.FaultManifestAppend, &rec); err != nil {
		return fmt.Errorf("pipeline: manifest append: %w", err)
	}
	doc, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("pipeline: encoding manifest record: %w", err)
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(doc), doc)
	if _, err := resilience.WriteString(ctx, m.f, line); err != nil {
		if herr := m.healLocked(); herr != nil {
			m.broken = true
			return fmt.Errorf("pipeline: appending manifest record: %w (and healing the torn tail failed: %w — manifest poisoned)", err, herr)
		}
		return fmt.Errorf("pipeline: appending manifest record: %w", err)
	}
	if err := resilience.Sync(ctx, m.f); err != nil {
		m.broken = true
		return fmt.Errorf("%w: syncing record: %w", ErrManifestPoisoned, err)
	}
	m.end += int64(len(line))
	m.recs = append(m.recs, rec)
	return nil
}

// healLocked truncates back to the last durable offset after a failed
// plain write, restoring the append position.
func (m *Manifest) healLocked() error {
	if err := m.f.Truncate(m.end); err != nil {
		return err
	}
	if _, err := m.f.Seek(m.end, 0); err != nil {
		return err
	}
	return m.f.Sync()
}

// LastWindow returns the newest window with any journalled progress,
// 0 before the first cut.
func (m *Manifest) LastWindow() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.recs) == 0 {
		return 0
	}
	return m.recs[len(m.recs)-1].Window
}

// LastState returns the newest record's state, "" on an empty journal.
func (m *Manifest) LastState() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.recs) == 0 {
		return ""
	}
	return m.recs[len(m.recs)-1].State
}

// Get returns window w's record for the given state, if journalled.
func (m *Manifest) Get(w int, s State) (Record, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Scan backwards: the wanted record is almost always near the tip.
	for i := len(m.recs) - 1; i >= 0; i-- {
		if m.recs[i].Window == w && m.recs[i].State == s {
			return m.recs[i], true
		}
	}
	return Record{}, false
}

// Records returns a copy of the journal in append order.
func (m *Manifest) Records() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, len(m.recs))
	copy(out, m.recs)
	return out
}

// Len returns the number of committed records.
func (m *Manifest) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recs)
}

// Close releases the file handle; all committed records are durable.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.f.Close()
}
