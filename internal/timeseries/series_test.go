package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func twoHouseholdDataset() *Dataset {
	return &Dataset{
		Name: "test", Cx: 4, Cy: 4,
		Series: []*Series{
			{Location: Location{0, 0}, Values: []float64{1, 2, 3}},
			{Location: Location{3, 2}, Values: []float64{4, 5, 6}},
		},
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := twoHouseholdDataset().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	cases := map[string]*Dataset{
		"empty":    {Cx: 4, Cy: 4},
		"bad grid": {Cx: 0, Cy: 4, Series: []*Series{{Values: []float64{1}}}},
		"ragged":   {Cx: 4, Cy: 4, Series: []*Series{{Values: []float64{1, 2}}, {Values: []float64{1}}}},
		"oob x":    {Cx: 4, Cy: 4, Series: []*Series{{Location: Location{4, 0}, Values: []float64{1}}}},
		"neg y":    {Cx: 4, Cy: 4, Series: []*Series{{Location: Location{0, -1}, Values: []float64{1}}}},
	}
	for name, d := range cases {
		if err := d.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := twoHouseholdDataset()
	c := d.Clone()
	c.Series[0].Values[0] = 99
	if d.Series[0].Values[0] == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestGlobalMinMax(t *testing.T) {
	d := twoHouseholdDataset()
	min, max := d.GlobalMinMax()
	if min != 1 || max != 6 {
		t.Fatalf("MinMax = %v,%v", min, max)
	}
}

func TestGlobalMinMaxWorkersMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := &Dataset{Cx: 8, Cy: 8}
	for i := 0; i < 23; i++ {
		s := &Series{Location: Location{X: i % 8, Y: (i / 8) % 8}, Values: make([]float64, 17)}
		for j := range s.Values {
			s.Values[j] = rng.NormFloat64() * 10
		}
		d.Series = append(d.Series, s)
	}
	wantMin, wantMax := d.GlobalMinMax()
	for _, workers := range []int{0, 1, 2, 3, 7, 50} {
		min, max := d.GlobalMinMaxWorkers(workers)
		if min != wantMin || max != wantMax {
			t.Fatalf("workers=%d: (%v,%v), want (%v,%v)", workers, min, max, wantMin, wantMax)
		}
		n := FitNormalizerWorkers(d, workers)
		if n.Min != wantMin || n.Max != wantMax {
			t.Fatalf("workers=%d: normalizer (%v,%v)", workers, n.Min, n.Max)
		}
	}
}

func TestNormalizerRoundTrip(t *testing.T) {
	d := twoHouseholdDataset()
	n := FitNormalizer(d)
	norm := n.Apply(d)
	// All values must land in [0,1], extremes at the bounds.
	if norm.Series[0].Values[0] != 0 || norm.Series[1].Values[2] != 1 {
		t.Fatalf("normalised extremes wrong: %v %v", norm.Series[0].Values, norm.Series[1].Values)
	}
	for _, s := range norm.Series {
		for i, v := range s.Values {
			if v < 0 || v > 1 {
				t.Fatalf("normalised value out of range: %v", v)
			}
			back := n.Invert(v)
			orig := d.SeriesAt(s.Location).Values[i]
			if math.Abs(back-orig) > 1e-12 {
				t.Fatalf("round trip %v -> %v, want %v", v, back, orig)
			}
		}
	}
}

func TestNormalizerDegenerate(t *testing.T) {
	d := &Dataset{Cx: 1, Cy: 1, Series: []*Series{{Values: []float64{5, 5, 5}}}}
	n := FitNormalizer(d)
	norm := n.Apply(d)
	for _, v := range norm.Series[0].Values {
		if v != 0 {
			t.Fatalf("constant dataset should normalise to 0, got %v", v)
		}
	}
}

func TestClip(t *testing.T) {
	d := &Dataset{Cx: 1, Cy: 1, Series: []*Series{{Values: []float64{-1, 0.5, 10}}}}
	d.Clip(2)
	want := []float64{0, 0.5, 2}
	for i, v := range d.Series[0].Values {
		if v != want[i] {
			t.Fatalf("Clip = %v, want %v", d.Series[0].Values, want)
		}
	}
}

func TestClipPanicsOnBadCeiling(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	twoHouseholdDataset().Clip(0)
}

func TestSlidingWindows(t *testing.T) {
	w := SlidingWindows([]float64{1, 2, 3, 4, 5}, 2)
	if len(w) != 3 {
		t.Fatalf("got %d windows", len(w))
	}
	if w[0].Input[0] != 1 || w[0].Input[1] != 2 || w[0].Target != 3 {
		t.Fatalf("window 0 = %+v", w[0])
	}
	if w[2].Target != 5 {
		t.Fatalf("window 2 = %+v", w[2])
	}
	if SlidingWindows([]float64{1, 2}, 2) != nil {
		t.Fatal("too-short series should give nil")
	}
}

// Property: window inputs are copies, never aliases of the source.
func TestSlidingWindowsCopyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		ws := 1 + rng.Intn(n-1)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()
		}
		wins := SlidingWindows(v, ws)
		if len(wins) != n-ws {
			return false
		}
		orig := wins[0].Input[0]
		v[0] = -1
		return wins[0].Input[0] == orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMetricsHandComputed(t *testing.T) {
	truth := []float64{1, 2, 3}
	pred := []float64{2, 2, 1}
	if got := MAE(truth, pred); got != 1 {
		t.Fatalf("MAE = %v", got)
	}
	if got := RMSE(truth, pred); math.Abs(got-math.Sqrt(5.0/3)) > 1e-12 {
		t.Fatalf("RMSE = %v", got)
	}
}

func TestMetricsEmpty(t *testing.T) {
	if MAE(nil, nil) != 0 || RMSE(nil, nil) != 0 || MeanMRE(nil, nil, 1) != 0 {
		t.Fatal("empty metrics should be 0")
	}
}

func TestMREFloorGuards(t *testing.T) {
	// True answer 0 with floor 1: error measured against the floor.
	if got := MRE(0, 5, 1); got != 500 {
		t.Fatalf("MRE with floor = %v", got)
	}
	if got := MRE(10, 5, 1); got != 50 {
		t.Fatalf("MRE = %v", got)
	}
	// Non-positive floor falls back to the package default.
	if got := MRE(0, 0, 0); got != 0 {
		t.Fatalf("MRE(0,0) = %v", got)
	}
}

func TestMeanMRE(t *testing.T) {
	got := MeanMRE([]float64{10, 20}, []float64{5, 30}, 1)
	if got != 50 { // (50 + 50) / 2
		t.Fatalf("MeanMRE = %v", got)
	}
}

// Property: RMSE ≥ MAE always (Jensen).
func TestRMSEDominatesMAEProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 10
			b[i] = rng.NormFloat64() * 10
		}
		return RMSE(a, b) >= MAE(a, b)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
