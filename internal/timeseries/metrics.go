package timeseries

import (
	"fmt"
	"math"
)

// MAE returns the mean absolute error between equal-length slices.
func MAE(truth, pred []float64) float64 {
	checkPair(truth, pred)
	if len(truth) == 0 {
		return 0
	}
	var s float64
	for i := range truth {
		s += math.Abs(truth[i] - pred[i])
	}
	return s / float64(len(truth))
}

// RMSE returns the root mean squared error between equal-length slices.
func RMSE(truth, pred []float64) float64 {
	checkPair(truth, pred)
	if len(truth) == 0 {
		return 0
	}
	var s float64
	for i := range truth {
		d := truth[i] - pred[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(truth)))
}

// MREFloor guards the MRE denominator: queries whose true answer is below
// the floor are evaluated against the floor, the standard convention for
// relative error over sparse spatial data (otherwise empty regions make
// the metric unbounded).
const MREFloor = 1e-9

// MRE returns the mean relative error |p - p̄|/max(p, floor) × 100 of
// Eq. 5 for a single query.
func MRE(truth, noisy, floor float64) float64 {
	if floor <= 0 {
		floor = MREFloor
	}
	den := math.Abs(truth)
	if den < floor {
		den = floor
	}
	return math.Abs(truth-noisy) / den * 100
}

// MeanMRE averages MRE over paired query answers.
func MeanMRE(truth, noisy []float64, floor float64) float64 {
	checkPair(truth, noisy)
	if len(truth) == 0 {
		return 0
	}
	var s float64
	for i := range truth {
		s += MRE(truth[i], noisy[i], floor)
	}
	return s / float64(len(truth))
}

func checkPair(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("timeseries: metric length mismatch %d vs %d", len(a), len(b)))
	}
}
