package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAutocorrelationKnownCases(t *testing.T) {
	// Lag 0 is always 1 for a non-constant series.
	v := []float64{1, 2, 3, 4, 3, 2}
	if got := Autocorrelation(v, 0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("lag-0 = %v", got)
	}
	// Perfectly alternating series: strong negative lag-1 correlation.
	alt := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	if got := Autocorrelation(alt, 1); got > -0.7 {
		t.Fatalf("alternating lag-1 = %v, want strongly negative", got)
	}
	// Constant series → 0 by convention.
	if got := Autocorrelation([]float64{5, 5, 5}, 1); got != 0 {
		t.Fatalf("constant series = %v", got)
	}
}

func TestAutocorrelationPanicsOnBadLag(t *testing.T) {
	for _, lag := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for lag %d", lag)
				}
			}()
			Autocorrelation([]float64{1, 2, 3}, lag)
		}()
	}
}

// Property: autocorrelation is bounded by 1 in magnitude.
func TestAutocorrelationBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(50)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		lag := rng.Intn(n)
		ac := Autocorrelation(v, lag)
		return ac <= 1+1e-9 && ac >= -1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSeasonalProfileAndStrength(t *testing.T) {
	// Pure period-4 signal repeated 5 times.
	base := []float64{1, 3, 2, 0}
	var v []float64
	for i := 0; i < 5; i++ {
		v = append(v, base...)
	}
	profile := SeasonalProfile(v, 4)
	for i, want := range base {
		if math.Abs(profile[i]-want) > 1e-12 {
			t.Fatalf("profile[%d] = %v, want %v", i, profile[i], want)
		}
	}
	if s := SeasonalStrength(v, 4); s < 0.999 {
		t.Fatalf("pure periodic strength = %v, want ~1", s)
	}
	// White noise: strength near 0 (profile explains little).
	rng := rand.New(rand.NewSource(1))
	noise := make([]float64, 400)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	if s := SeasonalStrength(noise, 4); s > 0.1 {
		t.Fatalf("noise strength = %v, want ~0", s)
	}
}

func TestSeasonalProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SeasonalProfile([]float64{1}, 0)
}

func TestDetrendRemovesLinearTrend(t *testing.T) {
	v := make([]float64, 50)
	for i := range v {
		v[i] = 2 + 0.5*float64(i)
	}
	intercept, slope := Detrend(v)
	if math.Abs(intercept-2) > 1e-9 || math.Abs(slope-0.5) > 1e-9 {
		t.Fatalf("fit = %v + %v·t", intercept, slope)
	}
	for i, x := range v {
		if math.Abs(x) > 1e-9 {
			t.Fatalf("residual[%d] = %v", i, x)
		}
	}
	// Degenerate inputs are no-ops.
	if a, b := Detrend([]float64{7}); a != 0 || b != 0 {
		t.Fatal("short series should be untouched")
	}
}

func TestGeneratedDataHasWeeklySeasonality(t *testing.T) {
	// The synthetic generator's daily totals must show a period-7 cycle —
	// the structural property the STPT predictor exploits.
	vals := make([]float64, 10*7)
	for d := range vals {
		// weekly() replica: weekend lift.
		switch d % 7 {
		case 5:
			vals[d] = 1.12
		case 6:
			vals[d] = 1.15
		default:
			vals[d] = 0.97
		}
	}
	if s := SeasonalStrength(vals, 7); s < 0.99 {
		t.Fatalf("weekly strength = %v", s)
	}
}
