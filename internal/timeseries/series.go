// Package timeseries defines the household reading model of Section 2: a
// set of N households at fixed grid locations, each contributing a length-T
// series of consumption readings, plus the normalisation, clipping,
// windowing and error-metric utilities the STPT pipeline is built from.
package timeseries

import (
	"fmt"
	"math"

	"repro/internal/parallel"
)

// Location is a household's cell coordinate on the Cx x Cy spatial grid.
type Location struct {
	X, Y int
}

// Series is one household's consumption readings x_{i,t}, t = 1..T.
type Series struct {
	Location Location
	Values   []float64
}

// Len returns the number of readings.
func (s *Series) Len() int { return len(s.Values) }

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	v := make([]float64, len(s.Values))
	copy(v, s.Values)
	return &Series{Location: s.Location, Values: v}
}

// Dataset is the meter-reading database D of Eq. 1: every household's
// series, all of equal length, with grid placement metadata.
type Dataset struct {
	Name   string
	Cx, Cy int // spatial grid dimensions the locations live on
	Series []*Series
}

// Validate checks structural invariants: equal series lengths and in-grid
// locations.
func (d *Dataset) Validate() error {
	if d.Cx <= 0 || d.Cy <= 0 {
		return fmt.Errorf("timeseries: invalid grid %dx%d", d.Cx, d.Cy)
	}
	if len(d.Series) == 0 {
		return fmt.Errorf("timeseries: empty dataset")
	}
	T := d.Series[0].Len()
	for i, s := range d.Series {
		if s.Len() != T {
			return fmt.Errorf("timeseries: series %d has length %d, want %d", i, s.Len(), T)
		}
		if s.Location.X < 0 || s.Location.X >= d.Cx || s.Location.Y < 0 || s.Location.Y >= d.Cy {
			return fmt.Errorf("timeseries: series %d location (%d,%d) outside %dx%d grid",
				i, s.Location.X, s.Location.Y, d.Cx, d.Cy)
		}
	}
	return nil
}

// T returns the series length (0 for an empty dataset).
func (d *Dataset) T() int {
	if len(d.Series) == 0 {
		return 0
	}
	return d.Series[0].Len()
}

// N returns the number of households.
func (d *Dataset) N() int { return len(d.Series) }

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{Name: d.Name, Cx: d.Cx, Cy: d.Cy, Series: make([]*Series, len(d.Series))}
	for i, s := range d.Series {
		out.Series[i] = s.Clone()
	}
	return out
}

// SeriesAt returns the first series at the given location, or nil when no
// household occupies that cell.
func (d *Dataset) SeriesAt(loc Location) *Series {
	for _, s := range d.Series {
		if s.Location == loc {
			return s
		}
	}
	return nil
}

// GlobalMinMax returns the smallest and largest reading across all
// households and times. It panics on an empty dataset.
func (d *Dataset) GlobalMinMax() (min, max float64) {
	if len(d.Series) == 0 || d.T() == 0 {
		panic("timeseries: GlobalMinMax of empty dataset")
	}
	min, max = math.Inf(1), math.Inf(-1)
	for _, s := range d.Series {
		for _, v := range s.Values {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	return min, max
}

// GlobalMinMaxWorkers is GlobalMinMax with the household range sharded
// across workers. Min/max reduction is exact under any regrouping, so the
// result is bit-identical to the serial scan for every worker count.
func (d *Dataset) GlobalMinMaxWorkers(workers int) (min, max float64) {
	if workers <= 1 || len(d.Series) < 2 {
		return d.GlobalMinMax()
	}
	if len(d.Series) == 0 || d.T() == 0 {
		panic("timeseries: GlobalMinMax of empty dataset")
	}
	shards := parallel.Shards(len(d.Series), workers)
	mins := make([]float64, len(shards))
	maxs := make([]float64, len(shards))
	parallel.ForEachShard(workers, len(d.Series), func(sh int, r parallel.Range) {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range d.Series[r.Lo:r.Hi] {
			for _, v := range s.Values {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		mins[sh], maxs[sh] = lo, hi
	})
	min, max = math.Inf(1), math.Inf(-1)
	for sh := range shards {
		if mins[sh] < min {
			min = mins[sh]
		}
		if maxs[sh] > max {
			max = maxs[sh]
		}
	}
	return min, max
}

// Normalizer applies and inverts the global min-max normalisation of
// Eq. 6. Keeping the fitted bounds lets sanitised values be mapped back to
// physical kWh.
type Normalizer struct {
	Min, Max float64
}

// FitNormalizer computes global min-max bounds over the dataset.
func FitNormalizer(d *Dataset) Normalizer {
	min, max := d.GlobalMinMax()
	return Normalizer{Min: min, Max: max}
}

// FitNormalizerWorkers is FitNormalizer with the scan sharded across
// workers; the fitted bounds are identical for every worker count.
func FitNormalizerWorkers(d *Dataset, workers int) Normalizer {
	min, max := d.GlobalMinMaxWorkers(workers)
	return Normalizer{Min: min, Max: max}
}

// Apply returns a normalised deep copy of d with values in [0, 1].
// A degenerate (constant) dataset maps to all zeros.
func (n Normalizer) Apply(d *Dataset) *Dataset {
	out := d.Clone()
	span := n.Max - n.Min
	for _, s := range out.Series {
		for i, v := range s.Values {
			if span == 0 {
				s.Values[i] = 0
			} else {
				s.Values[i] = (v - n.Min) / span
			}
		}
	}
	return out
}

// Invert maps a normalised value back to the original scale.
func (n Normalizer) Invert(v float64) float64 {
	return v*(n.Max-n.Min) + n.Min
}

// Clip caps every reading at the given ceiling, in place. The paper uses a
// per-dataset sensitivity clipping factor (Table 2) so that a single
// household's contribution — and hence the Laplace sensitivity — is
// bounded by a value far below the raw maximum.
func (d *Dataset) Clip(ceiling float64) {
	if ceiling <= 0 {
		panic(fmt.Sprintf("timeseries: non-positive clip ceiling %v", ceiling))
	}
	for _, s := range d.Series {
		for i, v := range s.Values {
			if v > ceiling {
				s.Values[i] = ceiling
			}
			if s.Values[i] < 0 {
				s.Values[i] = 0
			}
		}
	}
}

// Window is one supervised training sample: ws consecutive values and the
// next value as the target. Ctx carries optional side information constant
// across the window (STPT uses the source neighbourhood's location and
// scale, per the paper's "time series data along with their corresponding
// geographic locations").
type Window struct {
	Input  []float64
	Target float64
	Ctx    []float64
}

// SlidingWindows sweeps a window of size ws across values, producing
// len(values)-ws samples. It returns nil when the series is too short.
func SlidingWindows(values []float64, ws int) []Window {
	if ws <= 0 {
		panic(fmt.Sprintf("timeseries: non-positive window size %d", ws))
	}
	if len(values) <= ws {
		return nil
	}
	out := make([]Window, 0, len(values)-ws)
	for i := 0; i+ws < len(values); i++ {
		in := make([]float64, ws)
		copy(in, values[i:i+ws])
		out = append(out, Window{Input: in, Target: values[i+ws]})
	}
	return out
}
