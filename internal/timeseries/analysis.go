package timeseries

import (
	"fmt"
	"math"
)

// Autocorrelation returns the sample autocorrelation of v at the given
// lag, in [-1, 1]. It panics on invalid lags and returns 0 for a constant
// series.
func Autocorrelation(v []float64, lag int) float64 {
	if lag < 0 || lag >= len(v) {
		panic(fmt.Sprintf("timeseries: lag %d out of range for series of length %d", lag, len(v)))
	}
	n := len(v)
	var mean float64
	for _, x := range v {
		mean += x
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := v[i] - mean
		den += d * d
		if i+lag < n {
			num += d * (v[i+lag] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// SeasonalProfile averages the series over a fixed period, returning the
// mean value at each phase — e.g. period 7 on daily data yields the
// weekly profile. Trailing partial periods are included.
func SeasonalProfile(v []float64, period int) []float64 {
	if period <= 0 {
		panic(fmt.Sprintf("timeseries: non-positive period %d", period))
	}
	sums := make([]float64, period)
	counts := make([]int, period)
	for i, x := range v {
		sums[i%period] += x
		counts[i%period]++
	}
	for i := range sums {
		if counts[i] > 0 {
			sums[i] /= float64(counts[i])
		}
	}
	return sums
}

// SeasonalStrength quantifies how much of the series' variance the
// periodic profile explains, in [0, 1]: 1 - Var(residual)/Var(series).
func SeasonalStrength(v []float64, period int) float64 {
	if len(v) == 0 {
		return 0
	}
	profile := SeasonalProfile(v, period)
	var mean float64
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	var total, residual float64
	for i, x := range v {
		d := x - mean
		total += d * d
		r := x - profile[i%period]
		residual += r * r
	}
	if total == 0 {
		return 0
	}
	s := 1 - residual/total
	return math.Max(0, math.Min(1, s))
}

// Detrend removes a least-squares linear trend from v in place and
// returns the (intercept, slope) that was removed.
func Detrend(v []float64) (intercept, slope float64) {
	n := float64(len(v))
	if n < 2 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i, y := range v {
		x := float64(i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	for i := range v {
		v[i] -= intercept + slope*float64(i)
	}
	return intercept, slope
}
