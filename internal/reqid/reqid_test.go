package reqid

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func runMiddleware(t *testing.T, inbound string) (echoed, seen string) {
	t.Helper()
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = FromContext(r.Context())
		if hdr := r.Header.Get(Header); hdr != seen {
			t.Errorf("request header %q != context id %q", hdr, seen)
		}
	}))
	req := httptest.NewRequest(http.MethodGet, "/query", nil)
	if inbound != "" {
		req.Header.Set(Header, inbound)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Header().Get(Header), seen
}

// TestPropagateInbound: a well-formed client id is adopted end to end.
func TestPropagateInbound(t *testing.T) {
	echoed, seen := runMiddleware(t, "client-id-123")
	if echoed != "client-id-123" || seen != "client-id-123" {
		t.Fatalf("echoed %q, context %q; want the inbound id", echoed, seen)
	}
}

// TestGenerateWhenMissingOrHostile: no id, or an id that would corrupt
// a log line, gets replaced with a fresh one.
func TestGenerateWhenMissingOrHostile(t *testing.T) {
	for _, inbound := range []string{"", "bad id\nwith newline", strings.Repeat("x", 500)} {
		echoed, seen := runMiddleware(t, inbound)
		if echoed == "" || echoed != seen {
			t.Fatalf("inbound %q: echoed %q, context %q", inbound, echoed, seen)
		}
		if inbound != "" && echoed == inbound {
			t.Fatalf("hostile id %q adopted verbatim", inbound)
		}
	}
}

// TestNewUnique: ids don't collide in a small sample.
func TestNewUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := New()
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}
