// Package reqid generates and propagates X-Request-ID correlation ids
// across the serving tier: the gateway mints (or adopts) an id per
// inbound request, stamps it on every replica attempt — including
// hedges and retries, which share the original id — and every daemon
// echoes it in the response and its structured logs, so one slow query
// can be traced gateway → replica → answer from stderr alone.
package reqid

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"
)

// Header is the correlation-id header, chosen for what every proxy and
// log pipeline already understands.
const Header = "X-Request-ID"

// maxLen bounds an adopted inbound id so a hostile client cannot use
// the echo path as a log-flooding amplifier.
const maxLen = 128

var fallback atomic.Uint64

// New mints a fresh id: 16 random hex bytes, or a process-unique
// counter id if the system entropy pool is somehow unreadable.
func New() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d", fallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// sanitize drops ids that would corrupt a log line or a header.
func sanitize(id string) string {
	if len(id) > maxLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' || c == ':'
		if !ok {
			return ""
		}
	}
	return id
}

type ctxKey struct{}

// FromContext returns the request's correlation id, or "".
func FromContext(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// WithContext attaches an id to a context.
func WithContext(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// Middleware is the generate-or-propagate layer: a well-formed inbound
// X-Request-ID is adopted, anything else replaced with a fresh id; the
// id is echoed on the response, stored in the request context, and the
// (possibly rewritten) header is left on r for any onward proxying.
func Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitize(r.Header.Get(Header))
		if id == "" {
			id = New()
		}
		r.Header.Set(Header, id)
		w.Header().Set(Header, id)
		next.ServeHTTP(w, r.WithContext(WithContext(r.Context(), id)))
	})
}
