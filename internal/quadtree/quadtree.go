// Package quadtree implements the data-independent spatio-temporal quadtree
// of Section 4.2: the training prefix of the time axis is cut into one
// segment per tree level, level d splits the spatial grid into 4^d
// neighbourhoods, and each neighbourhood contributes a representative
// (user-averaged, Eq. 9) time series over its level's segment. Sensitivity
// shrinks geometrically with height (Theorem 6), so macro trends are
// sanitised with far less noise than per-cell data would need.
package quadtree

import (
	"fmt"
	"math"

	"repro/internal/dp"
	"repro/internal/timeseries"
)

// Params configures tree construction.
type Params struct {
	Cx, Cy int // spatial grid (Cx and Cy must be powers of two, Cx <= Cy)
	Depth  int // deepest level; levels 0..Depth inclusive
	TTrain int // training prefix length along the time axis
}

// Validate checks structural requirements.
func (p Params) Validate() error {
	if p.Cx <= 0 || p.Cy <= 0 || !isPow2(p.Cx) || !isPow2(p.Cy) {
		return fmt.Errorf("quadtree: grid %dx%d must be positive powers of two", p.Cx, p.Cy)
	}
	maxDepth := log2(min(p.Cx, p.Cy))
	if p.Depth < 0 || p.Depth > maxDepth {
		return fmt.Errorf("quadtree: depth %d outside [0, %d]", p.Depth, maxDepth)
	}
	if p.TTrain < p.Depth+1 {
		return fmt.Errorf("quadtree: TTrain %d too short for %d levels", p.TTrain, p.Depth+1)
	}
	return nil
}

// Levels returns the number of tree levels (Depth+1).
func (p Params) Levels() int { return p.Depth + 1 }

// SegmentLen returns T'_train = ceil(TTrain / levels) (Eq. 8).
func (p Params) SegmentLen() int {
	return (p.TTrain + p.Levels() - 1) / p.Levels()
}

// Neighborhood is one spatial block at some tree level, with its
// representative series over the level's time segment.
type Neighborhood struct {
	X0, X1, Y0, Y1 int // inclusive cell bounds
	Users          int // households inside the block
	Series         []float64
}

// Contains reports whether cell (x, y) falls inside the block.
func (n *Neighborhood) Contains(x, y int) bool {
	return x >= n.X0 && x <= n.X1 && y >= n.Y0 && y <= n.Y1
}

// Level groups the 4^Depth neighbourhoods sharing one time segment.
type Level struct {
	Depth         int
	TimeStart     int // inclusive
	TimeEnd       int // exclusive
	Sensitivity   float64
	Neighborhoods []*Neighborhood
}

// Tree is the constructed spatio-temporal quadtree.
type Tree struct {
	Params Params
	Levels []*Level
}

// Build constructs the tree from a (normalised) dataset. A neighbourhood's
// representative series is the mean *cell total* across the
// neighbourhood's cells at each time step of the level's segment — the
// quantity whose sensitivity Theorem 6 bounds: one household changes one
// cell's total by at most 1 (normalised), hence the representative by
// 1/#cells = 1/4^(log2(Cx)-depth). At the leaf level the representative
// is the cell's total itself, so the learned pattern estimates C_norm's
// cell sums (capturing household density as well as per-user usage).
// Empty neighbourhoods yield all-zero series.
func Build(d *timeseries.Dataset, p Params) (*Tree, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("quadtree: %w", err)
	}
	if d.Cx != p.Cx || d.Cy != p.Cy {
		return nil, fmt.Errorf("quadtree: dataset grid %dx%d != params %dx%d", d.Cx, d.Cy, p.Cx, p.Cy)
	}
	if d.T() < p.TTrain {
		return nil, fmt.Errorf("quadtree: dataset length %d < TTrain %d", d.T(), p.TTrain)
	}
	seg := p.SegmentLen()
	t := &Tree{Params: p}
	for depth := 0; depth <= p.Depth; depth++ {
		start := depth * seg
		end := start + seg
		if end > p.TTrain {
			end = p.TTrain
		}
		if start >= end {
			// TTrain not divisible: deepest levels can run out of time
			// budget; give them the final reading so every level trains.
			start, end = p.TTrain-1, p.TTrain
		}
		lvl := &Level{
			Depth:       depth,
			TimeStart:   start,
			TimeEnd:     end,
			Sensitivity: Sensitivity(depth, p.Cx),
		}
		side := 1 << depth
		bw := p.Cx / side // block width in cells
		bh := p.Cy / side
		for by := 0; by < side; by++ {
			for bx := 0; bx < side; bx++ {
				lvl.Neighborhoods = append(lvl.Neighborhoods, &Neighborhood{
					X0: bx * bw, X1: (bx+1)*bw - 1,
					Y0: by * bh, Y1: (by+1)*bh - 1,
					Series: make([]float64, end-start),
				})
			}
		}
		// Accumulate household series into their blocks.
		for _, s := range d.Series {
			nb := lvl.Neighborhoods[(s.Location.Y/bh)*side+s.Location.X/bw]
			nb.Users++
			for i := start; i < end; i++ {
				nb.Series[i-start] += s.Values[i]
			}
		}
		cellsPerNeighborhood := float64(bw * bh)
		for _, nb := range lvl.Neighborhoods {
			inv := 1 / cellsPerNeighborhood
			for i := range nb.Series {
				nb.Series[i] *= inv
			}
		}
		t.Levels = append(t.Levels, lvl)
	}
	return t, nil
}

// Sensitivity returns Theorem 6's bound 1/4^(log2(Cx)-depth) for a
// representative-series element at the given depth.
func Sensitivity(depth, cx int) float64 {
	return 1 / math.Pow(4, float64(log2(cx)-depth))
}

// Sanitize perturbs every representative series element with Laplace noise
// at the level's Theorem-6 sensitivity and per-timestamp budget
// epsPattern/tTrain (Algorithm 1, line 10), in place. It returns the total
// budget charged, which by sequential composition over the TTrain
// timestamps is at most epsPattern.
func (t *Tree) Sanitize(lap *dp.Laplace, epsPattern float64) float64 {
	if epsPattern <= 0 {
		panic(fmt.Sprintf("quadtree: non-positive pattern budget %v", epsPattern))
	}
	perStep := epsPattern / float64(t.Params.TTrain)
	var charged float64
	for _, lvl := range t.Levels {
		scale := dp.Scale(lvl.Sensitivity, perStep)
		for _, nb := range lvl.Neighborhoods {
			for i := range nb.Series {
				nb.Series[i] += lap.Sample(scale)
			}
		}
		charged += perStep * float64(lvl.TimeEnd-lvl.TimeStart)
	}
	return charged
}

// AllSeries returns every neighbourhood series across all levels, shallow
// slices in level order — the stacked training corpus of Figure 2(b).
func (t *Tree) AllSeries() [][]float64 {
	var out [][]float64
	for _, lvl := range t.Levels {
		for _, nb := range lvl.Neighborhoods {
			out = append(out, nb.Series)
		}
	}
	return out
}

// FinestLevel returns the deepest level of the tree.
func (t *Tree) FinestLevel() *Level { return t.Levels[len(t.Levels)-1] }

// NeighborhoodAt returns the level's neighbourhood containing cell (x, y).
func (l *Level) NeighborhoodAt(x, y, cx, cy int) *Neighborhood {
	side := 1 << l.Depth
	bw := cx / side
	bh := cy / side
	return l.Neighborhoods[(y/bh)*side+x/bw]
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
