package quadtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dp"
	"repro/internal/timeseries"
)

func flatDataset(cx, cy, T int, value float64) *timeseries.Dataset {
	d := &timeseries.Dataset{Name: "flat", Cx: cx, Cy: cy}
	for y := 0; y < cy; y++ {
		for x := 0; x < cx; x++ {
			vals := make([]float64, T)
			for t := range vals {
				vals[t] = value
			}
			d.Series = append(d.Series, &timeseries.Series{
				Location: timeseries.Location{X: x, Y: y}, Values: vals,
			})
		}
	}
	return d
}

func TestParamsValidate(t *testing.T) {
	good := Params{Cx: 4, Cy: 4, Depth: 2, TTrain: 6}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Cx: 3, Cy: 4, Depth: 1, TTrain: 6},  // not power of two
		{Cx: 4, Cy: 4, Depth: 3, TTrain: 6},  // depth too deep
		{Cx: 4, Cy: 4, Depth: -1, TTrain: 6}, // negative depth
		{Cx: 4, Cy: 4, Depth: 2, TTrain: 2},  // too short
		{Cx: 0, Cy: 4, Depth: 0, TTrain: 6},  // zero grid
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %d should fail: %+v", i, p)
		}
	}
}

func TestSegmentLenMatchesEq8(t *testing.T) {
	// Paper example: 4x4 grid, T=6, log2(4)+1 = 3 levels → segment 2.
	p := Params{Cx: 4, Cy: 4, Depth: 2, TTrain: 6}
	if p.Levels() != 3 || p.SegmentLen() != 2 {
		t.Fatalf("levels=%d seg=%d", p.Levels(), p.SegmentLen())
	}
	// Ceiling: T=7 over 3 levels → 3.
	p.TTrain = 7
	if p.SegmentLen() != 3 {
		t.Fatalf("seg=%d, want 3", p.SegmentLen())
	}
}

func TestBuildPaperExampleStructure(t *testing.T) {
	// Figure 2(b): 4x4x6 training matrix, 3 levels → 1+4+16 = 21 series.
	d := flatDataset(4, 4, 6, 1)
	tree, err := Build(d, Params{Cx: 4, Cy: 4, Depth: 2, TTrain: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Levels) != 3 {
		t.Fatalf("levels = %d", len(tree.Levels))
	}
	counts := []int{1, 4, 16}
	total := 0
	for i, lvl := range tree.Levels {
		if len(lvl.Neighborhoods) != counts[i] {
			t.Fatalf("level %d has %d neighbourhoods, want %d", i, len(lvl.Neighborhoods), counts[i])
		}
		total += len(lvl.Neighborhoods)
		if lvl.TimeEnd-lvl.TimeStart != 2 {
			t.Fatalf("level %d segment [%d,%d)", i, lvl.TimeStart, lvl.TimeEnd)
		}
	}
	if total != 21 || len(tree.AllSeries()) != 21 {
		t.Fatalf("series count %d, want 21", total)
	}
}

func TestRepresentativeIsMeanCellTotal(t *testing.T) {
	// Cell (0,0) totals 2+4 = 6, cell (1,1) totals 8, two cells empty.
	// Root (4 cells): representative = (6+0+8+0)/4 = 3.5.
	d := &timeseries.Dataset{Cx: 2, Cy: 2, Series: []*timeseries.Series{
		{Location: timeseries.Location{X: 0, Y: 0}, Values: []float64{2, 2}},
		{Location: timeseries.Location{X: 0, Y: 0}, Values: []float64{4, 4}},
		{Location: timeseries.Location{X: 1, Y: 1}, Values: []float64{8, 8}},
	}}
	tree, err := Build(d, Params{Cx: 2, Cy: 2, Depth: 1, TTrain: 2})
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Levels[0].Neighborhoods[0]
	if root.Users != 3 {
		t.Fatalf("root users = %d", root.Users)
	}
	if math.Abs(root.Series[0]-3.5) > 1e-12 {
		t.Fatalf("root series = %v, want 3.5", root.Series[0])
	}
	// Depth 1: each quadrant is a single cell, so the representative is
	// the cell total itself.
	lvl1 := tree.Levels[1]
	nb := lvl1.NeighborhoodAt(0, 0, 2, 2)
	if nb.Users != 2 || math.Abs(nb.Series[0]-6) > 1e-12 {
		t.Fatalf("quadrant total = %v (users %d)", nb.Series[0], nb.Users)
	}
	// Empty quadrant stays zero.
	empty := lvl1.NeighborhoodAt(1, 0, 2, 2)
	if empty.Users != 0 || empty.Series[0] != 0 {
		t.Fatalf("empty quadrant = %+v", empty)
	}
}

func TestSensitivityTheorem6(t *testing.T) {
	// Cx = 32: depth 5 (leaf) → 1; depth 0 (root) → 1/4^5.
	if got := Sensitivity(5, 32); got != 1 {
		t.Fatalf("leaf sensitivity = %v", got)
	}
	if got := Sensitivity(0, 32); math.Abs(got-1.0/1024) > 1e-18 {
		t.Fatalf("root sensitivity = %v", got)
	}
	// Monotone increasing with depth.
	prev := 0.0
	for dpt := 0; dpt <= 5; dpt++ {
		s := Sensitivity(dpt, 32)
		if s <= prev {
			t.Fatalf("sensitivity not increasing at depth %d", dpt)
		}
		prev = s
	}
}

func TestBuildRejectsMismatchedGrid(t *testing.T) {
	d := flatDataset(4, 4, 6, 1)
	if _, err := Build(d, Params{Cx: 8, Cy: 8, Depth: 1, TTrain: 6}); err == nil {
		t.Fatal("expected grid-mismatch error")
	}
	if _, err := Build(d, Params{Cx: 4, Cy: 4, Depth: 1, TTrain: 10}); err == nil {
		t.Fatal("expected TTrain-too-long error")
	}
}

func TestSanitizeChargesAtMostBudget(t *testing.T) {
	d := flatDataset(8, 8, 12, 0.5)
	p := Params{Cx: 8, Cy: 8, Depth: 3, TTrain: 12}
	tree, err := Build(d, p)
	if err != nil {
		t.Fatal(err)
	}
	lap := dp.NewLaplace(rand.New(rand.NewSource(1)))
	charged := tree.Sanitize(lap, 10)
	if charged > 10+1e-9 {
		t.Fatalf("charged %v > budget 10", charged)
	}
	if charged <= 0 {
		t.Fatal("nothing charged")
	}
}

func TestSanitizeNoiseScalesWithDepth(t *testing.T) {
	// With a large grid the root's sensitivity is tiny, so root noise must
	// be far smaller than leaf noise on average.
	d := flatDataset(32, 32, 30, 0.5)
	p := Params{Cx: 32, Cy: 32, Depth: 5, TTrain: 30}
	var rootErr, leafErr float64
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		tree, err := Build(d, p)
		if err != nil {
			t.Fatal(err)
		}
		lap := dp.NewLaplace(rand.New(rand.NewSource(int64(trial))))
		tree.Sanitize(lap, 5)
		for _, v := range tree.Levels[0].Neighborhoods[0].Series {
			rootErr += math.Abs(v - 0.5)
		}
		for _, v := range tree.FinestLevel().Neighborhoods[0].Series {
			leafErr += math.Abs(v - 0.5)
		}
	}
	if rootErr*10 > leafErr {
		t.Fatalf("root error %v should be orders of magnitude below leaf error %v", rootErr, leafErr)
	}
}

// Property: every cell belongs to exactly one neighbourhood per level, and
// block bounds tile the grid.
func TestNeighborhoodsTileGridProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		exp := 1 + rng.Intn(4) // grid side 2..16
		cx := 1 << exp
		depth := rng.Intn(exp + 1)
		d := flatDataset(cx, cx, depth+2, 1)
		tree, err := Build(d, Params{Cx: cx, Cy: cx, Depth: depth, TTrain: depth + 2})
		if err != nil {
			return false
		}
		for _, lvl := range tree.Levels {
			for x := 0; x < cx; x++ {
				for y := 0; y < cx; y++ {
					hits := 0
					for _, nb := range lvl.Neighborhoods {
						if nb.Contains(x, y) {
							hits++
						}
					}
					if hits != 1 {
						return false
					}
					if !lvl.NeighborhoodAt(x, y, cx, cx).Contains(x, y) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: user counts per level always sum to the dataset size.
func TestUserCountConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cx := 1 << (1 + rng.Intn(3))
		n := 1 + rng.Intn(40)
		d := &timeseries.Dataset{Cx: cx, Cy: cx}
		for i := 0; i < n; i++ {
			d.Series = append(d.Series, &timeseries.Series{
				Location: timeseries.Location{X: rng.Intn(cx), Y: rng.Intn(cx)},
				Values:   []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()},
			})
		}
		depth := rng.Intn(log2(cx) + 1)
		tree, err := Build(d, Params{Cx: cx, Cy: cx, Depth: depth, TTrain: 4})
		if err != nil {
			return false
		}
		for _, lvl := range tree.Levels {
			sum := 0
			for _, nb := range lvl.Neighborhoods {
				sum += nb.Users
			}
			if sum != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
