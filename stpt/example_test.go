package stpt_test

import (
	"fmt"

	"repro/stpt"
)

// ExampleRun publishes a small synthetic dataset under ε-DP and prints the
// audited privacy spend.
func ExampleRun() {
	data := stpt.GenerateDataset(stpt.SpecCA, stpt.LayoutUniform, 8, 8, 28, 1)
	cfg := stpt.DefaultConfig()
	cfg.TTrain = 16
	cfg.Depth = 2
	cfg.WindowSize = 4
	cfg.EmbedDim = 4
	cfg.Hidden = 4
	cfg.Train.Epochs = 2
	cfg.ClipFactor = stpt.SpecCA.ClipFactor

	res, err := stpt.Run(data, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("released %dx%dx%d matrix\n", res.Sanitized.Cx, res.Sanitized.Cy, res.Sanitized.Ct)
	fmt.Printf("privacy spend: ε=%.0f\n", res.Accountant.TotalEpsilon())
	// Output:
	// released 8x8x12 matrix
	// privacy spend: ε=30
}

// ExampleRunBaseline releases the same horizon with the Identity baseline.
func ExampleRunBaseline() {
	data := stpt.GenerateDataset(stpt.SpecTX, stpt.LayoutUniform, 4, 4, 20, 2)
	rel, err := stpt.RunBaseline("identity", data, 8, stpt.SpecTX.ClipFactor, 30, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("identity released %d cells\n", rel.Len())
	// Output:
	// identity released 192 cells
}

// ExampleSuggestBudgetSplit asks the analytical model how to divide ε_tot.
func ExampleSuggestBudgetSplit() {
	cfg := stpt.DefaultConfig()
	cfg.TTrain = 100
	f, err := stpt.SuggestBudgetSplit(cfg, 32, 32, 120)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("pattern share in (0,1): %v\n", f > 0 && f < 1)
	// Output:
	// pattern share in (0,1): true
}
