// Package stpt is the public API of the STPT library, a reproduction of
// "Differentially Private Publication of Smart Electricity Grid Data"
// (EDBT 2025). It publishes spatio-temporal electricity consumption
// matrices under user-level ε-differential privacy by (1) privately
// learning consumption patterns with a sequence model trained on a
// hierarchically sanitised spatio-temporal quadtree and (2) releasing
// Laplace-sanitised aggregates over a value-homogeneous partitioning
// derived from the learned patterns.
//
// A minimal end-to-end use:
//
//	data := stpt.GenerateDataset(stpt.SpecCER, stpt.LayoutUniform, 32, 32, 220, 1)
//	cfg := stpt.DefaultConfig()
//	res, err := stpt.Run(data, cfg)
//	// res.Sanitized is the ε_tot-DP release; evaluate utility:
//	mre := stpt.EvaluateMRE(res.Truth, res.Sanitized, stpt.QueryRandom, 300, 1)
package stpt

import (
	"context"
	"fmt"
	"io"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/grid"
	"repro/internal/ldp"
	"repro/internal/query"
	"repro/internal/resilience"
	"repro/internal/timeseries"
)

// Core data types, re-exported from the implementation packages.
type (
	// Dataset is the meter-reading database: N household series of equal
	// length placed on a Cx x Cy grid.
	Dataset = timeseries.Dataset
	// Series is one household's readings.
	Series = timeseries.Series
	// Location is a grid cell coordinate.
	Location = timeseries.Location
	// Matrix is a Cx x Cy x Ct consumption matrix.
	Matrix = grid.Matrix
	// Query is an inclusive-bounds 3-orthotope range query.
	Query = grid.Query
	// Config holds all STPT knobs; see DefaultConfig.
	Config = core.Config
	// ModelKind selects the pattern-recognition network.
	ModelKind = core.ModelKind
	// Result is an STPT run's output: the DP release plus diagnostics.
	Result = core.Result
	// DatasetSpec describes a synthetic dataset calibrated to Table 2.
	DatasetSpec = datasets.Spec
	// Algorithm is a baseline release mechanism.
	Algorithm = baselines.Algorithm
	// BaselineInput bundles a baseline's inputs.
	BaselineInput = baselines.Input
	// RetryPolicy governs retry-with-fresh-seed on retryable failures
	// (Config.Retry); the zero value means a single attempt.
	RetryPolicy = resilience.Policy
	// RecoveryReport records how a run recovered — attempts consumed,
	// whether it degraded to a fallback model (Result.Recovery).
	RecoveryReport = resilience.Report
	// Checkpoint persists completed sweep cells for crash-safe resume.
	Checkpoint = resilience.Checkpoint
)

// Model kinds for Config.Model (Figure 8(i)).
const (
	ModelRNN          = core.ModelRNN
	ModelGRU          = core.ModelGRU
	ModelLSTM         = core.ModelLSTM
	ModelAttentiveGRU = core.ModelAttentiveGRU
	ModelTransformer  = core.ModelTransformer
	ModelPersistence  = core.ModelPersistence
)

// Dataset specs from the paper's Table 2.
var (
	SpecCER = datasets.CER
	SpecCA  = datasets.CA
	SpecMI  = datasets.MI
	SpecTX  = datasets.TX
)

// Household layouts from Section 5.1.
const (
	LayoutUniform    = datasets.Uniform
	LayoutNormal     = datasets.Normal
	LayoutLosAngeles = datasets.LosAngeles
)

// Query workload classes from Section 5.1.
const (
	QueryRandom = query.Random
	QuerySmall  = query.Small
	QueryLarge  = query.Large
)

// DefaultConfig mirrors the paper's experimental testbed with
// CPU-friendly network sizes.
func DefaultConfig() Config { return core.DefaultConfig() }

// Run executes STPT on a dataset whose first cfg.TTrain readings form the
// training prefix and whose remainder is the released horizon.
func Run(d *Dataset, cfg Config) (*Result, error) { return core.Run(d, cfg) }

// RunContext is Run with cooperative cancellation: training and release
// stop promptly when ctx is cancelled or its deadline passes. Retryable
// failures (e.g. diverged training) are retried per cfg.Retry and degrade
// down cfg.FallbackModels; Result.Recovery records what happened.
func RunContext(ctx context.Context, d *Dataset, cfg Config) (*Result, error) {
	return core.RunContext(ctx, d, cfg)
}

// DefaultRetryPolicy is the retry policy used by DefaultConfig: three
// attempts with deterministic seed jitter between them.
func DefaultRetryPolicy() RetryPolicy { return resilience.DefaultPolicy() }

// OpenCheckpoint opens (or creates) a sweep checkpoint file for use with
// the experiment runners' Options.Checkpoint.
func OpenCheckpoint(path string) (*Checkpoint, error) { return resilience.OpenCheckpoint(path) }

// GenerateDataset synthesises a dataset calibrated to the spec's published
// statistics, with households placed under the layout.
func GenerateDataset(spec DatasetSpec, layout datasets.Layout, cx, cy, T int, seed int64) *Dataset {
	return spec.Generate(layout, cx, cy, T, seed)
}

// DatasetSpecs returns the four paper datasets (CER, CA, MI, TX).
func DatasetSpecs() []DatasetSpec { return datasets.All() }

// Baselines returns the comparison algorithms of Figure 6 (Identity, FAST,
// Fourier-10/20, Wavelet-10/20, LGAN-DP).
func Baselines() []Algorithm { return baselines.Registry() }

// Baseline looks an algorithm up by name; "wpo" (Figure 7) is included.
func Baseline(name string) (Algorithm, error) { return baselines.Lookup(name) }

// RunBaseline releases the dataset's horizon with the named baseline under
// the given total budget.
func RunBaseline(name string, d *Dataset, tTrain int, cellSensitivity, epsilon float64, seed int64) (*Matrix, error) {
	alg, err := baselines.Lookup(name)
	if err != nil {
		return nil, err
	}
	if d.T() <= tTrain {
		return nil, fmt.Errorf("stpt: dataset length %d must exceed tTrain %d", d.T(), tTrain)
	}
	in := baselines.Input{Dataset: d, TTrain: tTrain, CellSensitivity: cellSensitivity}
	return alg.Release(in, epsilon, seed)
}

// RunBaselineContext is RunBaseline with cooperative cancellation:
// iterative baselines (LGAN-DP) check ctx between iterations.
func RunBaselineContext(ctx context.Context, name string, d *Dataset, tTrain int, cellSensitivity, epsilon float64, seed int64) (*Matrix, error) {
	alg, err := baselines.Lookup(name)
	if err != nil {
		return nil, err
	}
	if d.T() <= tTrain {
		return nil, fmt.Errorf("stpt: dataset length %d must exceed tTrain %d", d.T(), tTrain)
	}
	in := baselines.Input{Dataset: d, TTrain: tTrain, CellSensitivity: cellSensitivity}
	return baselines.ReleaseContext(ctx, alg, in, epsilon, seed)
}

// TruthMatrix returns the non-private consumption matrix over the horizon
// [tTrain, T), for utility evaluation.
func TruthMatrix(d *Dataset, tTrain int) *Matrix {
	in := baselines.Input{Dataset: d, TTrain: tTrain, CellSensitivity: 1}
	return in.Truth()
}

// EvaluateMRE evaluates a release with count random queries of the class
// and returns the mean relative error in percent (Eq. 5).
func EvaluateMRE(truth, release *Matrix, class query.Class, count int, seed int64) float64 {
	qs := query.GenerateSeeded(seed, class, truth.Cx, truth.Cy, truth.Ct, count)
	return query.Evaluate(truth, release, qs, 0)
}

// SuggestBudgetSplit returns the analytically recommended fraction of
// ε_tot to assign to pattern recognition for the given configuration and
// matrix geometry — the paper's future-work budget-allocation model.
func SuggestBudgetSplit(cfg Config, cx, cy, horizon int) (float64, error) {
	return core.SuggestBudgetSplit(cfg, cx, cy, horizon)
}

// LocalMechanism is a local-DP (no trusted collector) release protocol —
// the paper's future-work decentralised setting.
type LocalMechanism = ldp.Mechanism

// LocalMechanisms returns the implemented local-DP protocols: on-device
// Laplace perturbation of every reading, and sampled reporting.
func LocalMechanisms() []LocalMechanism {
	return []LocalMechanism{ldp.LocalLaplace{}, ldp.LocalSampling{}}
}

// RunLocal releases the dataset's horizon under local DP: every household
// perturbs its own readings before aggregation, protecting against the
// aggregator itself.
func RunLocal(m LocalMechanism, d *Dataset, tTrain int, clip, epsilon float64, seed int64) (*Matrix, error) {
	return m.Release(ldp.Input{Dataset: d, TTrain: tTrain, Clip: clip}, epsilon, seed)
}

// SaveCSV writes a dataset in the library's CSV interchange format.
func SaveCSV(d *Dataset, w io.Writer) error { return datasets.SaveCSV(d, w) }

// LoadCSV reads the CSV interchange format; pass cx, cy <= 0 to infer a
// power-of-two grid from the locations.
func LoadCSV(r io.Reader, name string, cx, cy int) (*Dataset, error) {
	return datasets.LoadCSV(r, name, cx, cy)
}
