package stpt_test

import (
	"bytes"
	"testing"

	"repro/stpt"
)

// smallConfig keeps end-to-end public-API tests fast on CPU.
func smallConfig() stpt.Config {
	cfg := stpt.DefaultConfig()
	cfg.TTrain = 16
	cfg.Depth = 2
	cfg.WindowSize = 4
	cfg.QuantLevels = 6
	cfg.EmbedDim = 4
	cfg.Hidden = 4
	cfg.Train.Epochs = 3
	return cfg
}

func TestPublicAPIEndToEnd(t *testing.T) {
	data := stpt.GenerateDataset(stpt.SpecCA, stpt.LayoutUniform, 8, 8, 28, 1)
	cfg := smallConfig()
	cfg.ClipFactor = stpt.SpecCA.ClipFactor
	res, err := stpt.Run(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sanitized.Ct != 12 {
		t.Fatalf("horizon %d", res.Sanitized.Ct)
	}
	mre := stpt.EvaluateMRE(res.Truth, res.Sanitized, stpt.QueryRandom, 100, 1)
	if mre < 0 {
		t.Fatalf("MRE %v", mre)
	}
}

func TestPublicBaselines(t *testing.T) {
	if len(stpt.Baselines()) != 7 {
		t.Fatalf("expected 7 registry baselines, got %d", len(stpt.Baselines()))
	}
	data := stpt.GenerateDataset(stpt.SpecTX, stpt.LayoutNormal, 4, 4, 20, 2)
	rel, err := stpt.RunBaseline("identity", data, 8, stpt.SpecTX.ClipFactor, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	truth := stpt.TruthMatrix(data, 8)
	if rel.Ct != truth.Ct {
		t.Fatalf("dims %d vs %d", rel.Ct, truth.Ct)
	}
	if _, err := stpt.RunBaseline("bogus", data, 8, 1, 10, 3); err == nil {
		t.Fatal("expected unknown-baseline error")
	}
	if _, err := stpt.RunBaseline("identity", data, 20, 1, 10, 3); err == nil {
		t.Fatal("expected no-horizon error")
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	data := stpt.GenerateDataset(stpt.SpecMI, stpt.LayoutLosAngeles, 8, 8, 6, 4)
	var buf bytes.Buffer
	if err := stpt.SaveCSV(data, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := stpt.LoadCSV(&buf, "MI", 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != data.N() {
		t.Fatalf("households %d vs %d", back.N(), data.N())
	}
}

func TestDatasetSpecs(t *testing.T) {
	specs := stpt.DatasetSpecs()
	if len(specs) != 4 || specs[0].Name != "CER" {
		t.Fatalf("specs = %+v", specs)
	}
}

func TestBaselineLookupAndExtensions(t *testing.T) {
	a, err := stpt.Baseline("wpo")
	if err != nil || a.Name() != "wpo" {
		t.Fatalf("Baseline(wpo) = %v, %v", a, err)
	}
	if len(stpt.LocalMechanisms()) != 2 {
		t.Fatal("expected two local mechanisms")
	}
	data := stpt.GenerateDataset(stpt.SpecCA, stpt.LayoutUniform, 4, 4, 12, 3)
	rel, err := stpt.RunLocal(stpt.LocalMechanisms()[0], data, 4, stpt.SpecCA.ClipFactor, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Ct != 8 {
		t.Fatalf("horizon %d", rel.Ct)
	}
	f, err := stpt.SuggestBudgetSplit(smallConfig(), 16, 16, 48)
	if err != nil || f <= 0 || f >= 1 {
		t.Fatalf("SuggestBudgetSplit = %v, %v", f, err)
	}
}
