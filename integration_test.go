package repro

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/powergrid"
	"repro/stpt"
)

// TestPipelineEndToEnd drives the whole stack through the public API: data
// generation → CSV round trip → STPT release → utility evaluation →
// baseline comparison → downstream planning on the released matrix.
func TestPipelineEndToEnd(t *testing.T) {
	data := stpt.GenerateDataset(stpt.SpecCA, stpt.LayoutNormal, 16, 16, 60, 42)

	// CSV round trip preserves the dataset exactly.
	var buf bytes.Buffer
	if err := stpt.SaveCSV(data, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := stpt.LoadCSV(&buf, data.Name, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != data.N() || loaded.T() != data.T() {
		t.Fatalf("round trip lost data: %d/%d vs %d/%d", loaded.N(), loaded.T(), data.N(), data.T())
	}

	cfg := stpt.DefaultConfig()
	cfg.TTrain = 24
	cfg.Depth = 3
	cfg.WindowSize = 4
	cfg.EmbedDim = 6
	cfg.Hidden = 6
	cfg.Train.Epochs = 4
	cfg.ClipFactor = stpt.SpecCA.ClipFactor
	res, err := stpt.Run(loaded, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Privacy accounting is exactly ε_tot.
	if got := res.Accountant.TotalEpsilon(); math.Abs(got-cfg.EpsTotal()) > 1e-6 {
		t.Fatalf("accountant ε = %v, want %v", got, cfg.EpsTotal())
	}

	// Utility beats the Identity baseline at equal budget on random queries.
	stptMRE := stpt.EvaluateMRE(res.Truth, res.Sanitized, stpt.QueryRandom, 200, 7)
	idRelease, err := stpt.RunBaseline("identity", loaded, cfg.TTrain, cfg.ClipFactor, cfg.EpsTotal(), 1)
	if err != nil {
		t.Fatal(err)
	}
	idMRE := stpt.EvaluateMRE(res.Truth, idRelease, stpt.QueryRandom, 200, 7)
	if stptMRE >= idMRE {
		t.Fatalf("STPT (%v%%) should beat Identity (%v%%)", stptMRE, idMRE)
	}

	// The released matrix drives downstream planning without errors.
	net := powergrid.NewNetwork()
	net.AddBattery("B1", 4, 4)
	net.AddConsumer("C1", 3, 3, true)
	net.AddConsumer("C2", 5, 5, true)
	net.AddConsumer("C3", 12, 12, true)
	net.AddConsumer("C4", 13, 13, true)
	net.AssignNearest()
	net.Rebalance(res.Sanitized, 0, res.Sanitized.Ct-1, 1)
	if len(net.Assignment) != 4 {
		t.Fatalf("assignment incomplete: %v", net.Assignment)
	}
}

// TestLocalVsCentralIntegration verifies the LDP extension's headline
// trade-off end to end through the public API.
func TestLocalVsCentralIntegration(t *testing.T) {
	data := stpt.GenerateDataset(stpt.SpecTX, stpt.LayoutUniform, 8, 8, 36, 9)
	truth := stpt.TruthMatrix(data, 12)
	for _, m := range stpt.LocalMechanisms() {
		rel, err := stpt.RunLocal(m, data, 12, stpt.SpecTX.ClipFactor, 30, 4)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if rel.Ct != truth.Ct {
			t.Fatalf("%s: horizon mismatch", m.Name())
		}
	}
}

// TestBudgetSplitIntegration checks the analytical split model against an
// actual pair of STPT runs: the recommended split must not be worse than
// both extreme splits.
func TestBudgetSplitIntegration(t *testing.T) {
	data := stpt.GenerateDataset(stpt.SpecCER, stpt.LayoutUniform, 8, 8, 36, 11)
	base := stpt.DefaultConfig()
	base.TTrain = 16
	base.Depth = 2
	base.WindowSize = 3
	base.EmbedDim = 4
	base.Hidden = 4
	base.Train.Epochs = 3
	base.ClipFactor = stpt.SpecCER.ClipFactor
	truth := stpt.TruthMatrix(data, base.TTrain)

	run := func(f float64) float64 {
		cfg := base
		cfg.EpsPattern = 30 * f
		cfg.EpsSanitize = 30 * (1 - f)
		var total float64
		for rep := int64(0); rep < 3; rep++ {
			cfg.Seed = rep + 1
			res, err := stpt.Run(data, cfg)
			if err != nil {
				t.Fatal(err)
			}
			total += stpt.EvaluateMRE(truth, res.Sanitized, stpt.QueryRandom, 150, 3)
		}
		return total / 3
	}
	rec, err := stpt.SuggestBudgetSplit(base, 8, 8, truth.Ct)
	if err != nil {
		t.Fatal(err)
	}
	mid := run(rec)
	lo := run(0.05)
	hi := run(0.95)
	if mid > lo && mid > hi {
		t.Fatalf("recommended split %v (MRE %v) worse than both extremes (%v, %v)", rec, mid, lo, hi)
	}
}
