// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation as a testing.B benchmark. Each bench
// reports the figure's headline quantity via b.ReportMetric (MRE in
// percent, MAE/RMSE, or seconds), so `go test -bench=. -benchmem` emits
// the series the paper plots alongside the usual ns/op. Benchmarks run at
// a reduced scale by default; set STPT_BENCH_SCALE=bench or =paper for
// larger grids (see internal/experiments), and STPT_BENCH_WORKERS=n to
// run sweep cells on an n-worker pool (same results, less wall-clock).
package repro

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dp"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/ldp"
	"repro/internal/query"
)

// benchOptions picks the experiment scale from the environment.
// STPT_BENCH_WORKERS sets the sweep worker-pool size (results are
// bit-identical for every count; it only changes wall-clock).
func benchOptions() experiments.Options {
	var o experiments.Options
	switch os.Getenv("STPT_BENCH_SCALE") {
	case "paper":
		o = experiments.Paper()
	case "bench":
		o = experiments.Bench()
	default:
		o = experiments.Quick()
		o.Reps = 1
		o.Epochs = 3
	}
	if n, err := strconv.Atoi(os.Getenv("STPT_BENCH_WORKERS")); err == nil && n > 0 {
		o.Workers = n
	}
	return o
}

// --- Table 2 -----------------------------------------------------------

func BenchmarkTable2Datasets(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.RunTable2(o)
		if len(rows) != 4 {
			b.Fatal("table2 rows")
		}
		b.ReportMetric(rows[0].Measured.Mean, "CER-mean-kWh")
	}
}

// --- Figure 6 ----------------------------------------------------------

func benchFig6(b *testing.B, spec datasets.Spec, layout datasets.Layout) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunFig6Single(o, spec, layout)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range row.Results {
			if r.Name == "stpt" {
				b.ReportMetric(r.MRE[query.Random], "stpt-MRE%")
			}
			if r.Name == "identity" {
				b.ReportMetric(r.MRE[query.Random], "identity-MRE%")
			}
		}
		b.ReportMetric(experiments.Improvement(row, 0), "improvement%")
	}
}

func BenchmarkFig6CERUniform(b *testing.B) { benchFig6(b, datasets.CER, datasets.Uniform) }
func BenchmarkFig6CERNormal(b *testing.B)  { benchFig6(b, datasets.CER, datasets.Normal) }
func BenchmarkFig6CAUniform(b *testing.B)  { benchFig6(b, datasets.CA, datasets.Uniform) }
func BenchmarkFig6MIUniform(b *testing.B)  { benchFig6(b, datasets.MI, datasets.Uniform) }
func BenchmarkFig6TXUniform(b *testing.B)  { benchFig6(b, datasets.TX, datasets.Uniform) }

// --- Figure 7 ----------------------------------------------------------

func BenchmarkFig7WPO(b *testing.B) {
	o := benchOptions()
	spec := datasets.CER
	d := spec.GenerateDaily(datasets.LosAngeles, o.Cx, o.Cy, o.TTrain+o.Horizon, o.Seed)
	in := baselines.Input{Dataset: d, TTrain: o.TTrain, CellSensitivity: spec.DailyClip()}
	truth := in.Truth()
	qs := query.GenerateSeeded(o.Seed, query.Random, truth.Cx, truth.Cy, truth.Ct, o.Queries)
	wpo := baselines.NewWPO()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, err := wpo.Release(in, o.EpsPattern+o.EpsSanitize, o.Seed+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(query.Evaluate(truth, rel, qs, 0), "wpo-MRE%")
	}
}

// --- Figure 8 ----------------------------------------------------------

func BenchmarkFig8PatternBudget(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFig8PatternBudget(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].MAE, "MAE-lowest-budget")
		b.ReportMetric(pts[len(pts)-1].MAE, "MAE-highest-budget")
	}
}

func BenchmarkFig8Quantization(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFig8Quantization(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[1].MRE[query.Random], "k4-MRE%")
		b.ReportMetric(pts[len(pts)-1].MRE[query.Random], "k64-MRE%")
	}
}

func BenchmarkFig8RuntimeAll(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig8Runtime(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Name == "stpt" {
				b.ReportMetric(r.Seconds, "stpt-sec")
			}
		}
	}
}

func BenchmarkFig8TreeDepth(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFig8TreeDepth(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].MAE, "depth0-MAE")
		b.ReportMetric(pts[len(pts)-1].MAE, "deepest-MAE")
	}
}

func BenchmarkFig8BudgetSplit(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFig8BudgetSplit(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].MRE[query.Random], "split10-MRE%")
		b.ReportMetric(pts[3].MRE[query.Random], "split50-MRE%")
		b.ReportMetric(pts[len(pts)-1].MRE[query.Random], "split90-MRE%")
	}
}

func BenchmarkFig8TotalBudget(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFig8TotalBudget(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].MRE[query.Random], "eps5-MRE%")
		b.ReportMetric(pts[len(pts)-1].MRE[query.Random], "eps50-MRE%")
	}
}

func BenchmarkFig8Models(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFig8Models(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.ReportMetric(p.MRE[query.Random], p.Label+"-MRE%")
		}
	}
}

// --- Figure 9 ----------------------------------------------------------

func BenchmarkFig9Weekday(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig9(o)
		weekendLift := (rows[0].Totals[5] + rows[0].Totals[6]) / 2 /
			((rows[0].Totals[0] + rows[0].Totals[1] + rows[0].Totals[2] + rows[0].Totals[3] + rows[0].Totals[4]) / 5)
		b.ReportMetric(weekendLift, "CER-weekend-lift")
	}
}

// --- Ablations (DESIGN.md §5) ------------------------------------------

func benchAblation(b *testing.B, mutate func(*core.Config)) {
	o := benchOptions()
	spec := datasets.CER
	d := spec.GenerateDaily(datasets.Uniform, o.Cx, o.Cy, o.TTrain+o.Horizon, o.Seed)
	in := baselines.Input{Dataset: d, TTrain: o.TTrain, CellSensitivity: spec.DailyClip()}
	truth := in.Truth()
	qs := query.GenerateSeeded(o.Seed, query.Random, truth.Cx, truth.Cy, truth.Ct, o.Queries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := o.STPTConfig(spec)
		cfg.Seed = o.Seed + int64(i)
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := core.Run(d, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(query.Evaluate(truth, res.Sanitized, qs, 0), "MRE%")
	}
}

func BenchmarkAblationNone(b *testing.B) { benchAblation(b, nil) }
func BenchmarkAblationFlatTraining(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.FlatTraining = true })
}
func BenchmarkAblationUniformBudget(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.UniformBudget = true })
}
func BenchmarkAblationNoPartitioning(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.NoPartitions = true })
}
func BenchmarkAblationPersistence(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.Model = core.ModelPersistence })
}

func BenchmarkAblationLinearQuantization(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.Quant = core.QuantLinear })
}
func BenchmarkAblationRawSeeds(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.RawSeeds = true })
}

// --- Extensions (paper future work) -------------------------------------

func BenchmarkExtensionLDP(b *testing.B) {
	o := benchOptions()
	spec := datasets.CER
	d := spec.GenerateDaily(datasets.Uniform, o.Cx, o.Cy, o.TTrain+o.Horizon, o.Seed)
	in := ldp.Input{Dataset: d, TTrain: o.TTrain, Clip: spec.DailyClip()}
	truth := baselines.Input{Dataset: d, TTrain: o.TTrain, CellSensitivity: spec.DailyClip()}.Truth()
	qs := query.GenerateSeeded(o.Seed, query.Random, truth.Cx, truth.Cy, truth.Ct, o.Queries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, err := (ldp.LocalLaplace{}).Release(in, o.EpsPattern+o.EpsSanitize, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(query.Evaluate(truth, rel, qs, 0), "ldp-MRE%")
	}
}

func BenchmarkExtensionBudgetSplitModel(b *testing.B) {
	o := benchOptions()
	cfg := o.STPTConfig(datasets.CER)
	for i := 0; i < b.N; i++ {
		f, err := core.SuggestBudgetSplit(cfg, o.Cx, o.Cy, o.Horizon)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f, "pattern-share")
	}
}

// --- Primitive micro-benchmarks ----------------------------------------

func BenchmarkLaplaceSample(b *testing.B) {
	lap := dp.NewLaplace(rand.New(rand.NewSource(1)))
	for i := 0; i < b.N; i++ {
		_ = lap.Sample(1.5)
	}
}

func BenchmarkSecureLaplaceSample(b *testing.B) {
	s := &dp.SecureLaplace{Bound: 1000}
	for i := 0; i < b.N; i++ {
		_ = s.Sample(10, 1.5)
	}
}

func BenchmarkPrefixSumBuild32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := grid.NewMatrix(32, 32, 120)
	for i := range m.Data() {
		m.Data()[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = grid.NewPrefixSum(m)
	}
}

func BenchmarkPrefixSumQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := grid.NewMatrix(32, 32, 120)
	for i := range m.Data() {
		m.Data()[i] = rng.Float64()
	}
	ps := grid.NewPrefixSum(m)
	qs := query.GenerateSeeded(2, query.Random, 32, 32, 120, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ps.RangeSum(qs[i%len(qs)])
	}
}

func BenchmarkSTPTEndToEnd(b *testing.B) {
	o := benchOptions()
	spec := datasets.CA
	d := spec.GenerateDaily(datasets.Uniform, o.Cx, o.Cy, o.TTrain+o.Horizon, o.Seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := o.STPTConfig(spec)
		cfg.Seed = int64(i + 1)
		if _, err := core.Run(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
