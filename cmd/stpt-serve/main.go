// Command stpt-serve is the query-serving daemon over published DP
// releases: it loads one or more sanitised matrices and answers
// 3-orthotope range queries over HTTP with load shedding, per-request
// deadlines, panic containment, and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	stpt-datagen -dataset CA -grid 16 -hours 60 > ca.csv
//	stpt-run -in ca.csv -ttrain 30 -alg stpt -o ca-release.csv
//	stpt-serve -load ca=ca-release.csv -addr :8080
//	curl 'localhost:8080/query?d=ca&x0=0&x1=3&y0=0&y1=3&t0=0&t1=9'
//
// Endpoints: /query (range queries), /datasets (loaded releases),
// /healthz (liveness), /readyz (readiness; 503 while saturated,
// draining, or if the initial load failed), /metrics (Prometheus text),
// /catalog and /catalog/file (the replication control plane), and —
// with -reload-token — authenticated POST /-/reload for zero-downtime
// dataset swaps. SIGHUP triggers the same reload: all -load files are
// re-sniffed and swapped in atomically while in-flight queries finish
// on the old snapshot; a failed reload keeps the old data serving.
//
// Replica mode: -follow <peer-url> -data-dir <dir> turns the daemon
// into a follower that anti-entropy-syncs the peer's release catalog
// with resumable, checksum-verified downloads and serves the same
// answers. A follower whose peer is unreachable keeps serving its last
// good generation (degraded: /readyz reports staleness and every
// response carries X-STPT-Staleness) and latches healthy when the sync
// catches up:
//
//	stpt-serve -load ca=ca-release.csv -addr :8080                 # leader
//	stpt-serve -follow http://leader:8080 -data-dir /var/stpt -addr :8081
//	stpt-serve -follow http://leader:8080 -data-dir /var/stpt2 -addr :8082
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/profiling"
	"repro/internal/resilience"
	"repro/internal/scrub"
	"repro/internal/serve"
)

func main() {
	var loads []string
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		gridSide   = flag.Int("grid", 0, "grid side for household-CSV inputs (0 = infer power-of-two)")
		capacity   = flag.Int("capacity", 0, "max concurrent queries (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "admission queue depth beyond capacity (0 = 2x capacity)")
		timeout    = flag.Duration("timeout", 2*time.Second, "default per-request deadline")
		maxTimeout = flag.Duration("max-timeout", 10*time.Second, "cap on client-requested ?timeout=")
		drain      = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain deadline")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		chaos      = flag.String("chaos", "", "fault-injection spec for robustness testing, e.g. slow=50ms,panic=100 (see internal/serve.ChaosInjector)")
		reloadTok  = flag.String("reload-token", "", "bearer token enabling authenticated POST /-/reload (empty = endpoint disabled; SIGHUP reload always works)")
		pprofAddr  = flag.String("pprof-addr", "", "listen address for the net/http/pprof debug surface (empty = disabled); keep it on a loopback or otherwise private interface")
		follow     = flag.String("follow", "", "peer URL to sync releases from (replica mode); requires -data-dir")
		dataDir    = flag.String("data-dir", "", "directory a follower installs synced releases into")
		syncEvery  = flag.Duration("sync-interval", 2*time.Second, "anti-entropy period in -follow mode")
		scrubEvery = flag.Duration("scrub-interval", time.Minute, "period between at-rest integrity scrub passes (0 = scrubbing disabled)")
		scrubRate  = flag.Int64("scrub-rate", 0, "scrub read throttle in bytes/sec (0 = unthrottled)")
	)
	flag.Func("load", "release to serve as name=path (repeatable); path is a stpt-run cell CSV or a stpt-datagen household CSV", func(v string) error {
		loads = append(loads, v)
		return nil
	})
	flag.Parse()
	if *follow == "" && len(loads) == 0 {
		fatalf("no releases: pass at least one -load name=path (or -follow a peer)")
	}
	if *follow != "" && *dataDir == "" {
		fatalf("-follow requires -data-dir")
	}
	if a, err := profiling.Serve(*pprofAddr); err != nil {
		fatalf("%v", err)
	} else if a != "" {
		fmt.Fprintf(os.Stderr, "stpt-serve: pprof surface on http://%s/debug/pprof/\n", a)
	}

	specs := make([]serve.LoadSpec, 0, len(loads))
	for _, l := range loads {
		sp, err := serve.ParseLoadSpec(l, *gridSide, *gridSide)
		if err != nil {
			fatalf("-load %v", err)
		}
		specs = append(specs, sp)
	}
	store := serve.NewStore()
	// All-or-nothing: either every release loads or none is swapped in. A
	// failed initial load does NOT exit — the daemon serves /readyz 503
	// until a SIGHUP or POST /-/reload brings fixed files in, so a bad
	// deploy degrades to "not ready" instead of crash-looping. A follower
	// with no -load starts empty and is not-ready until its first sync.
	var initialErr error
	if len(specs) > 0 {
		initialErr = store.LoadAll(specs)
	}
	if initialErr != nil {
		fmt.Fprintf(os.Stderr, "stpt-serve: initial load failed (serving not-ready until reload): %v\n", initialErr)
	} else {
		for _, name := range store.Names() {
			rel, _ := store.Get(name)
			fmt.Fprintf(os.Stderr, "stpt-serve: loaded %q: %dx%dx%d, total %.4g\n",
				name, rel.Matrix.Cx, rel.Matrix.Cy, rel.Matrix.Ct, rel.Matrix.Total())
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *chaos != "" {
		in, err := serve.ChaosInjector(*chaos)
		if err != nil {
			fatalf("%v", err)
		}
		ctx = resilience.WithInjector(ctx, in)
		fmt.Fprintf(os.Stderr, "stpt-serve: CHAOS MODE: %s\n", *chaos)
	}

	s := serve.New(ctx, store, serve.Config{
		Capacity:       *capacity,
		Queue:          *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		DrainTimeout:   *drain,
		RetryAfter:     *retryAfter,
		ReloadToken:    *reloadTok,
	})
	s.MarkInitialLoad(initialErr)

	var fl *serve.Follower
	if *follow != "" {
		var err error
		fl, err = serve.NewFollower(store, serve.FollowerConfig{
			Peer:     *follow,
			Dir:      *dataDir,
			Interval: *syncEvery,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		if err != nil {
			fatalf("%v", err)
		}
		s.SetFollower(fl)
		go fl.Run(ctx)
		fmt.Fprintf(os.Stderr, "stpt-serve: following %s (anti-entropy every %s, data dir %s)\n",
			*follow, *syncEvery, *dataDir)
	}

	if *scrubEvery > 0 {
		scfg := scrub.Config{
			Interval:    *scrubEvery,
			BytesPerSec: *scrubRate,
			Targets:     scrub.StoreTargets(store),
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		}
		if fl != nil {
			// A follower self-heals: a quarantined release is re-fetched
			// from the peer through the verified catalog path. A leader has
			// no upstream — corruption latches /readyz until an operator
			// (or stpt-doctor with a healthy replica) restores the bytes.
			scfg.Repair = func(ctx context.Context, t scrub.Target) error {
				return fl.RepairFile(ctx, t.Path)
			}
		}
		sc, err := scrub.New(scfg)
		if err != nil {
			fatalf("%v", err)
		}
		s.SetIntegrity(sc)
		go sc.Run(ctx)
		fmt.Fprintf(os.Stderr, "stpt-serve: scrubbing at-rest releases every %s\n", *scrubEvery)
	}

	// SIGHUP: the classic zero-downtime reload bell. In-flight queries
	// finish on the old snapshot; a failed reload keeps the old data.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			// Reload logs its own outcome; a failure leaves the old
			// generation serving, so there is nothing further to do here.
			_ = s.Reload()
		}
	}()

	err := s.ListenAndRun(ctx, *addr, func(a net.Addr) {
		cfg := s.Config()
		fmt.Fprintf(os.Stderr, "stpt-serve: listening on %s (capacity %d, queue %d, default timeout %s)\n",
			a, cfg.Capacity, cfg.Queue, cfg.DefaultTimeout)
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintln(os.Stderr, "stpt-serve: drained cleanly")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "stpt-serve: "+format+"\n", args...)
	os.Exit(1)
}
