package main

import (
	"strings"
	"testing"
)

// TestValidateFlags: every malformed flag combination must be refused
// with the offending flag named, before any generation work runs —
// previously a non-power-of-two -grid panicked deep in the quadtree.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                    string
		dataset, layout         string
		grid, hours, households int
		ok                      bool
		wantMention             string
	}{
		{"defaults", "CER", "uniform", 32, 220, 0, true, ""},
		{"la-alias", "CA", "la", 16, 24, 100, true, ""},
		{"unknown-dataset", "SF", "uniform", 32, 220, 0, false, "-dataset"},
		{"unknown-layout", "CER", "spiral", 32, 220, 0, false, "-layout"},
		{"grid-not-power-of-two", "CER", "uniform", 24, 220, 0, false, "-grid"},
		{"grid-zero", "CER", "uniform", 0, 220, 0, false, "-grid"},
		{"grid-negative", "CER", "uniform", -8, 220, 0, false, "-grid"},
		{"grid-absurd", "CER", "uniform", 1 << 30, 220, 0, false, "-grid"},
		{"hours-zero", "CER", "uniform", 32, 0, 0, false, "-hours"},
		{"hours-negative", "CER", "uniform", 32, -5, 0, false, "-hours"},
		{"households-negative", "CER", "uniform", 32, 220, -1, false, "-households"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec, _, err := validateFlags(c.dataset, c.layout, c.grid, c.hours, c.households)
			if c.ok {
				if err != nil {
					t.Fatalf("rejected valid flags: %v", err)
				}
				if spec.Name != c.dataset {
					t.Fatalf("resolved spec %q, want %q", spec.Name, c.dataset)
				}
				return
			}
			if err == nil {
				t.Fatal("accepted invalid flags")
			}
			if !strings.Contains(err.Error(), c.wantMention) {
				t.Errorf("error %q does not name %s", err, c.wantMention)
			}
		})
	}
}
