// Command stpt-datagen emits a synthetic electricity dataset (calibrated
// to the paper's Table 2 statistics) as CSV on stdout or to a file.
//
// Usage:
//
//	stpt-datagen -dataset CER -layout uniform -grid 32 -hours 220 > cer.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datasets"
)

func main() {
	var (
		name   = flag.String("dataset", "CER", "dataset spec: CER|CA|MI|TX")
		layout = flag.String("layout", "uniform", "household layout: uniform|normal|losangeles")
		grid   = flag.Int("grid", 32, "square grid side (power of two)")
		hours  = flag.Int("hours", 220, "number of hourly readings per household")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("o", "", "output file (default stdout)")
		households = flag.Int("households", 0, "override spec household count (0 keeps spec)")
	)
	flag.Parse()

	spec, err := datasets.ByName(*name)
	if err != nil {
		fatal(err)
	}
	if *households > 0 {
		spec.Households = *households
	}
	lay, err := datasets.ParseLayout(*layout)
	if err != nil {
		fatal(err)
	}
	d := spec.Generate(lay, *grid, *grid, *hours, *seed)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := datasets.SaveCSV(d, w); err != nil {
		fatal(err)
	}
	st := datasets.Summarize(d)
	fmt.Fprintf(os.Stderr, "stpt-datagen: %s/%s %d households x %d hours: mean %.2f kWh, std %.2f, max %.2f\n",
		spec.Name, lay, st.Households, *hours, st.Mean, st.Std, st.Max)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stpt-datagen:", err)
	os.Exit(1)
}
