// Command stpt-datagen emits a synthetic electricity dataset (calibrated
// to the paper's Table 2 statistics) as CSV on stdout or to a file.
//
// Usage:
//
//	stpt-datagen -dataset CER -layout uniform -grid 32 -hours 220 > cer.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datasets"
)

func main() {
	var (
		name       = flag.String("dataset", "CER", "dataset spec: CER|CA|MI|TX")
		layout     = flag.String("layout", "uniform", "household layout: uniform|normal|losangeles")
		grid       = flag.Int("grid", 32, "square grid side (power of two)")
		hours      = flag.Int("hours", 220, "number of hourly readings per household")
		seed       = flag.Int64("seed", 1, "random seed")
		out        = flag.String("o", "", "output file (default stdout)")
		households = flag.Int("households", 0, "override spec household count (0 keeps spec)")
	)
	flag.Parse()

	// Validate everything up front: a bad flag should die here with one
	// usage line, not as a panic three packages deep into generation.
	spec, lay, err := validateFlags(*name, *layout, *grid, *hours, *households)
	if err != nil {
		fatal(err)
	}
	if *households > 0 {
		spec.Households = *households
	}
	d := spec.Generate(lay, *grid, *grid, *hours, *seed)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := datasets.SaveCSV(d, w); err != nil {
		fatal(err)
	}
	st := datasets.Summarize(d)
	fmt.Fprintf(os.Stderr, "stpt-datagen: %s/%s %d households x %d hours: mean %.2f kWh, std %.2f, max %.2f\n",
		spec.Name, lay, st.Households, *hours, st.Mean, st.Std, st.Max)
}

// validateFlags checks every flag before any work happens, returning the
// resolved spec and layout or a one-line usage error.
func validateFlags(name, layout string, grid, hours, households int) (datasets.Spec, datasets.Layout, error) {
	spec, err := datasets.ByName(name)
	if err != nil {
		return datasets.Spec{}, 0, fmt.Errorf("-dataset: %w", err)
	}
	lay, err := datasets.ParseLayout(layout)
	if err != nil {
		return datasets.Spec{}, 0, fmt.Errorf("-layout: %w", err)
	}
	if grid <= 0 || grid&(grid-1) != 0 {
		return datasets.Spec{}, 0, fmt.Errorf("-grid %d: want a positive power of two (the quadtree partitioner halves the grid per level)", grid)
	}
	if grid > datasets.MaxGridSide {
		return datasets.Spec{}, 0, fmt.Errorf("-grid %d: exceeds supported side %d", grid, datasets.MaxGridSide)
	}
	if hours <= 0 {
		return datasets.Spec{}, 0, fmt.Errorf("-hours %d: want a positive number of readings", hours)
	}
	if households < 0 {
		return datasets.Spec{}, 0, fmt.Errorf("-households %d: want a positive count, or 0 to keep the %s spec's %d", households, spec.Name, spec.Households)
	}
	return spec, lay, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stpt-datagen:", err)
	os.Exit(1)
}
