package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// runCompare diffs two -json regression records and returns the process
// exit code: 0 when new is no worse than old, 1 on an ns regression past
// maxRegress or on metric drift past metricTol.
//
// The ns gate is per experiment: ratio = new.ns / old.ns must stay at or
// under maxRegress (1.10 = "fail on >10% slower"). maxRegress <= 0
// disables the timing gate, leaving only the metric check — useful when
// old.json was recorded on different hardware. Experiments under the
// noise floor (-noise-floor, 200ms by default) on BOTH sides are
// reported but never gated: sub-noise-floor runs flap far past any sane
// threshold on shared machines, and a real regression in one shows up
// in the experiments above the floor too. Metrics are the headline
// figures (MRE, MAE, ...) and must match bit-for-bit at metricTol 0;
// the runtime metrics fig8d reports (seconds_*) are wall-clock
// measurements, so they are exempt from the drift check like ns is.
func runCompare(w io.Writer, oldPath, newPath string, maxRegress, metricTol float64, noiseFloorNs int64) int {
	oldRep, err := readReport(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stpt-bench: %v\n", err)
		return 1
	}
	newRep, err := readReport(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stpt-bench: %v\n", err)
		return 1
	}

	names := make([]string, 0, len(oldRep.Experiments))
	for name := range oldRep.Experiments {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	fail := func(format string, args ...any) {
		failed = true
		fmt.Fprintf(w, "FAIL: "+format+"\n", args...)
	}

	fmt.Fprintf(w, "%-12s %15s %15s %8s\n", "experiment", "old ns", "new ns", "ratio")
	for _, name := range names {
		o := oldRep.Experiments[name]
		n, ok := newRep.Experiments[name]
		if !ok {
			fail("%s: missing from %s", name, newPath)
			continue
		}
		ratio := math.Inf(1)
		if o.Ns > 0 {
			ratio = float64(n.Ns) / float64(o.Ns)
		}
		gated := o.Ns >= noiseFloorNs || n.Ns >= noiseFloorNs
		note := ""
		if !gated {
			note = "  (below noise floor, not gated)"
		}
		fmt.Fprintf(w, "%-12s %15d %15d %7.2fx%s\n", name, o.Ns, n.Ns, ratio, note)
		if maxRegress > 0 && gated && ratio > maxRegress {
			fail("%s: %.2fx slower than %s (max-regress %.2f)", name, ratio, oldPath, maxRegress)
		}
		compareMetrics(name, o.Metrics, n.Metrics, metricTol, fail)
	}
	for name := range newRep.Experiments {
		if _, ok := oldRep.Experiments[name]; !ok {
			fmt.Fprintf(w, "note: %s only in %s\n", name, newPath)
		}
	}
	if oldRep.TotalNs > 0 {
		fmt.Fprintf(w, "%-12s %15d %15d %7.2fx\n", "total",
			oldRep.TotalNs, newRep.TotalNs, float64(newRep.TotalNs)/float64(oldRep.TotalNs))
	}
	if failed {
		return 1
	}
	fmt.Fprintln(w, "PASS")
	return 0
}

// compareMetrics checks every old metric still exists and has not drifted.
// seconds_* metrics are wall-clock and skipped, like ns.
func compareMetrics(exp string, old, new map[string]float64, tol float64, fail func(string, ...any)) {
	keys := make([]string, 0, len(old))
	for k := range old {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if len(k) >= 8 && k[:8] == "seconds_" {
			continue
		}
		ov := old[k]
		nv, ok := new[k]
		if !ok {
			fail("%s: metric %s missing", exp, k)
			continue
		}
		if ov == nv || (math.IsNaN(ov) && math.IsNaN(nv)) {
			continue
		}
		drift := math.Abs(nv - ov)
		if rel := math.Abs(ov); rel > 0 {
			drift /= rel
		}
		if drift > tol {
			fail("%s: metric %s drifted %v -> %v (tol %v)", exp, k, ov, nv, tol)
		}
	}
}

func readReport(path string) (*benchReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Experiments) == 0 {
		return nil, fmt.Errorf("%s: no experiments recorded", path)
	}
	return &rep, nil
}
