package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeReport serialises a one-experiment regression record.
func writeReport(t *testing.T, dir, name string, ns int64, metrics map[string]float64) string {
	t.Helper()
	rep := benchReport{
		Scale: "quick", Workers: 1, Reps: 1, Seed: 1,
		Experiments: map[string]benchRecord{"fig6": {Ns: ns, Metrics: metrics}},
		TotalNs:     ns,
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareNoiseFloorGating: a 3x slowdown below the noise floor is
// reported but not gated; lowering -noise-floor below the measurements
// turns the same pair of records into a failure.
func TestCompareNoiseFloorGating(t *testing.T) {
	dir := t.TempDir()
	m := map[string]float64{"stpt_mre_random": 12.5}
	oldPath := writeReport(t, dir, "old.json", (50 * time.Millisecond).Nanoseconds(), m)
	newPath := writeReport(t, dir, "new.json", (150 * time.Millisecond).Nanoseconds(), m)

	var out bytes.Buffer
	if code := runCompare(&out, oldPath, newPath, 1.10, 0, (200 * time.Millisecond).Nanoseconds()); code != 0 {
		t.Fatalf("below default floor: exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "below noise floor") {
		t.Fatalf("sub-floor run not flagged as ungated:\n%s", out.String())
	}

	out.Reset()
	if code := runCompare(&out, oldPath, newPath, 1.10, 0, (100 * time.Millisecond).Nanoseconds()); code != 1 {
		t.Fatalf("above lowered floor: exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("gated regression not failed:\n%s", out.String())
	}
}

// TestCompareMetricDriftIgnoresFloor: the noise floor gates only the
// timing check — metric drift fails even on sub-floor experiments.
func TestCompareMetricDriftIgnoresFloor(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", 1000, map[string]float64{"stpt_mre_random": 12.5})
	newPath := writeReport(t, dir, "new.json", 1000, map[string]float64{"stpt_mre_random": 13.0})
	var out bytes.Buffer
	if code := runCompare(&out, oldPath, newPath, 1.10, 0, (200 * time.Millisecond).Nanoseconds()); code != 1 {
		t.Fatalf("metric drift: exit %d, want 1\n%s", code, out.String())
	}
}
