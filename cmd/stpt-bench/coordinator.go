package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/dist"
	"repro/internal/experiments"
)

// coordinatorConfig is the -coordinator flag bundle.
type coordinatorConfig struct {
	Addr        string
	Experiment  string
	Dataset     string
	Layout      string
	TTL         time.Duration
	MaxAttempts int
	LocalAfter  time.Duration
	Checkpoint  string
}

// runCoordinator executes the distributed phase of a sweep: it serves
// the experiment's cells as leases to stpt-sweep workers and blocks
// until every cell is journaled into the -checkpoint file (or
// quarantined). If no worker joins within LocalAfter, the cells run
// in-process instead — same lease state machine, same journal. Either
// way the caller's normal experiment path afterwards finds every cell
// cached and reduces the tables bit-identically to a serial run.
func runCoordinator(ctx context.Context, opts experiments.Options, cfg coordinatorConfig) error {
	if cfg.Checkpoint == "" {
		return fmt.Errorf("-coordinator needs -checkpoint: the journal is the sweep's durable state (restart = resume)")
	}
	spec := experiments.NewSweepSpec(cfg.Experiment, cfg.Dataset, cfg.Layout, opts)
	keys, err := spec.WorkList()
	if err != nil {
		return err
	}
	rawSpec, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	c, err := dist.NewCoordinator(dist.Config{
		Experiment:  cfg.Experiment,
		Keys:        keys,
		Spec:        rawSpec,
		TTL:         cfg.TTL,
		MaxAttempts: cfg.MaxAttempts,
		Journal:     opts.Checkpoint,
		Validate:    func(_ string, value []byte) error { return experiments.ValidateCellValue(value) },
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "stpt-bench: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	srv, err := dist.Serve(ctx, c, cfg.Addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	snap := c.Snapshot()
	fmt.Fprintf(os.Stderr, "stpt-bench: coordinating %s on %s: %d cells (%d already journaled); join workers with: stpt-sweep -join %s\n",
		cfg.Experiment, srv.Addr(), snap.Total, snap.Done, srv.Addr())

	// finish lingers briefly on success before the deferred srv.Close:
	// the worker that delivered the last cell polls for its next lease
	// immediately, and it should observe a clean "done" rather than a
	// vanished coordinator it would retry against.
	finish := func(err error) error {
		if err == nil && c.Joined() > 0 {
			fmt.Fprintf(os.Stderr, "stpt-bench: sweep complete; letting workers observe completion\n")
			time.Sleep(2 * time.Second)
		}
		return err
	}

	done := make(chan error, 1)
	go func() { done <- c.Wait(ctx) }()
	fallback := time.NewTimer(cfg.LocalAfter)
	defer fallback.Stop()
	select {
	case err := <-done:
		return finish(err)
	case <-fallback.C:
	}
	if c.Joined() > 0 {
		// Workers are (or were) on the sweep; leave the cells to them.
		// A worker crash only parks its cells until their leases expire
		// and another worker — possibly started much later — picks them
		// up; Ctrl-C still abandons cleanly with the journal intact.
		return finish(<-done)
	}
	fmt.Fprintf(os.Stderr, "stpt-bench: no workers joined within %s; running cells in-process (%d workers)\n",
		cfg.LocalAfter, opts.Workers)
	runner, err := experiments.NewCellRunner(spec)
	if err != nil {
		return err
	}
	return finish(dist.RunLocal(ctx, c, opts.Workers, runner.Execute))
}
