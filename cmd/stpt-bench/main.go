// Command stpt-bench regenerates the paper's tables and figures. Each
// experiment prints the same rows or series the paper plots.
//
// Usage:
//
//	stpt-bench -exp fig6 -scale quick
//	stpt-bench -exp all -scale bench
//	stpt-bench -exp fig6-single -dataset CER -layout uniform
//
// Scales: quick (seconds, small grid), bench (paper grid, reduced nets),
// paper (full Appendix C testbed; hours on CPU).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/datasets"
	"repro/internal/experiments"
	"repro/internal/resilience"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: table2|fig6|fig6-single|fig7|fig8ab|fig8c|fig8d|fig8ef|fig8g|fig8h|fig8i|fig9|ablations|ldp|extended|all")
		scale      = flag.String("scale", "quick", "scale: quick|bench|paper")
		dataset    = flag.String("dataset", "CER", "dataset for fig6-single: CER|CA|MI|TX")
		layout     = flag.String("layout", "uniform", "layout for fig6-single: uniform|normal|losangeles")
		seed       = flag.Int64("seed", 1, "base random seed")
		reps       = flag.Int("reps", 0, "override repetition count (0 keeps the scale default)")
		timeout    = flag.Duration("timeout", 0, "abort the sweep after this duration (0 = no limit)")
		checkpoint = flag.String("checkpoint", "", "checkpoint file: completed cells are skipped on restart")
	)
	flag.Parse()

	var opts experiments.Options
	switch *scale {
	case "quick":
		opts = experiments.Quick()
	case "bench":
		opts = experiments.Bench()
	case "paper":
		opts = experiments.Paper()
	default:
		fatalf("unknown scale %q", *scale)
	}
	opts.Seed = *seed
	if *reps > 0 {
		opts.Reps = *reps
	}
	opts.Retry = resilience.DefaultPolicy()
	if *checkpoint != "" {
		ck, err := resilience.OpenCheckpoint(*checkpoint)
		if err != nil {
			fatalf("%v", err)
		}
		if n := ck.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "stpt-bench: resuming from %s (%d completed cells)\n", *checkpoint, n)
		}
		opts.Checkpoint = ck
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	w := os.Stdout
	start := time.Now()
	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		err := fn()
		if err == nil {
			return
		}
		if errors.Is(err, context.DeadlineExceeded) {
			fatalf("%s: exceeded -timeout %s%s", name, *timeout, resumeHint(*checkpoint))
		}
		if errors.Is(err, context.Canceled) {
			fatalf("%s: interrupted%s", name, resumeHint(*checkpoint))
		}
		fatalf("%s: %v", name, err)
	}

	run("table2", func() error {
		rows, err := experiments.RunTable2Context(ctx, opts)
		if err != nil {
			return err
		}
		experiments.PrintTable2(w, rows)
		return nil
	})
	run("fig9", func() error {
		experiments.PrintFig9(w, experiments.RunFig9(opts))
		return nil
	})
	run("fig6", func() error {
		rows, err := experiments.RunFig6Context(ctx, opts)
		if err != nil {
			return err
		}
		experiments.PrintFig6(w, rows)
		return nil
	})
	run("fig6-single", func() error {
		spec, err := datasets.ByName(*dataset)
		if err != nil {
			return err
		}
		lay, err := datasets.ParseLayout(*layout)
		if err != nil {
			return err
		}
		row, err := experiments.RunFig6SingleContext(ctx, opts, spec, lay)
		if err != nil {
			return err
		}
		experiments.PrintFig6(w, []experiments.Fig6Row{row})
		return nil
	})
	run("fig7", func() error {
		rows, err := experiments.RunFig7Context(ctx, opts)
		if err != nil {
			return err
		}
		experiments.PrintFig7(w, rows)
		return nil
	})
	run("fig8ab", func() error {
		pts, err := experiments.RunFig8PatternBudgetContext(ctx, opts)
		if err != nil {
			return err
		}
		experiments.PrintSweepPattern(w, "Figure 8(a,b): pattern error vs per-datapoint budget", pts)
		return nil
	})
	run("fig8c", func() error {
		pts, err := experiments.RunFig8QuantizationContext(ctx, opts)
		if err != nil {
			return err
		}
		experiments.PrintSweepMRE(w, "Figure 8(c): impact of quantization levels", pts)
		return nil
	})
	run("fig8d", func() error {
		rows, err := experiments.RunFig8RuntimeContext(ctx, opts)
		if err != nil {
			return err
		}
		experiments.PrintRuntimes(w, rows)
		return nil
	})
	run("fig8ef", func() error {
		pts, err := experiments.RunFig8TreeDepthContext(ctx, opts)
		if err != nil {
			return err
		}
		experiments.PrintSweepPattern(w, "Figure 8(e,f): pattern error vs quadtree depth", pts)
		return nil
	})
	run("fig8g", func() error {
		pts, err := experiments.RunFig8BudgetSplitContext(ctx, opts)
		if err != nil {
			return err
		}
		experiments.PrintSweepMRE(w, "Figure 8(g): budget share for pattern recognition", pts)
		return nil
	})
	run("fig8h", func() error {
		pts, err := experiments.RunFig8TotalBudgetContext(ctx, opts)
		if err != nil {
			return err
		}
		experiments.PrintSweepMRE(w, "Figure 8(h): total privacy budget", pts)
		return nil
	})
	run("fig8i", func() error {
		pts, err := experiments.RunFig8ModelsContext(ctx, opts)
		if err != nil {
			return err
		}
		experiments.PrintSweepMRE(w, "Figure 8(i): distinct ML models", pts)
		return nil
	})
	run("ldp", func() error {
		rows, err := experiments.RunLDPExtensionContext(ctx, opts)
		if err != nil {
			return err
		}
		experiments.PrintLDPExtension(w, rows)
		return nil
	})
	run("extended", func() error {
		rows, err := experiments.RunExtendedContext(ctx, opts)
		if err != nil {
			return err
		}
		experiments.PrintExtended(w, rows)
		return nil
	})
	run("ablations", func() error {
		rows, err := experiments.RunAblationsContext(ctx, opts)
		if err != nil {
			return err
		}
		experiments.PrintAblations(w, rows)
		return nil
	})

	fmt.Fprintf(w, "done in %s (scale %s, exp %s)\n", time.Since(start).Round(time.Millisecond), *scale, *exp)
}

// resumeHint tells an interrupted user how to pick the sweep back up.
func resumeHint(checkpoint string) string {
	if checkpoint == "" {
		return " (no -checkpoint set; completed work is lost)"
	}
	return fmt.Sprintf(" (progress saved to %s; rerun with the same -checkpoint to resume)", checkpoint)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "stpt-bench: "+format+"\n", args...)
	os.Exit(1)
}
