// Command stpt-bench regenerates the paper's tables and figures. Each
// experiment prints the same rows or series the paper plots.
//
// Usage:
//
//	stpt-bench -exp fig6 -scale quick
//	stpt-bench -exp all -scale bench -workers 8
//	stpt-bench -exp fig6-single -dataset CER -layout uniform
//	stpt-bench -exp all -scale quick -json BENCH_PR2.json
//	stpt-bench -exp fig6 -scale paper -checkpoint sweep.json -coordinator 127.0.0.1:7070
//
// Scales: quick (seconds, small grid), bench (paper grid, reduced nets),
// paper (full Appendix C testbed; hours on CPU).
//
// -workers runs independent (dataset, algorithm, rep) sweep cells
// concurrently; tables are bit-identical for every worker count. -json
// writes a benchmark-regression record (per-experiment wall-clock ns and
// headline metrics) for CI to diff across commits.
//
// -coordinator distributes the sweep's cells to stpt-sweep worker
// processes as time-bounded leases (see internal/dist); the -checkpoint
// file doubles as the coordinator's journal, so killing and restarting
// the coordinator resumes where it left off, and the printed tables are
// bit-identical to a serial run.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/datasets"
	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/resilience"
)

// benchRecord is one experiment's entry in the -json regression file.
type benchRecord struct {
	Ns      int64              `json:"ns"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchReport is the -json file layout. Maps marshal with sorted keys,
// so the file is deterministic given deterministic metrics.
type benchReport struct {
	Scale       string                 `json:"scale"`
	Workers     int                    `json:"workers"`
	Reps        int                    `json:"reps"`
	Seed        int64                  `json:"seed"`
	Experiments map[string]benchRecord `json:"experiments"`
	TotalNs     int64                  `json:"total_ns"`
}

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: table2|fig6|fig6-single|fig7|fig8ab|fig8c|fig8d|fig8ef|fig8g|fig8h|fig8i|fig9|ablations|ldp|extended|all")
		scale      = flag.String("scale", "quick", "scale: quick|bench|paper")
		dataset    = flag.String("dataset", "CER", "dataset for fig6-single: CER|CA|MI|TX")
		layout     = flag.String("layout", "uniform", "layout for fig6-single: uniform|normal|losangeles")
		seed       = flag.Int64("seed", 1, "base random seed")
		reps       = flag.Int("reps", 0, "override repetition count (0 keeps the scale default)")
		timeout    = flag.Duration("timeout", 0, "abort the sweep after this duration (0 = no limit)")
		checkpoint = flag.String("checkpoint", "", "checkpoint file: completed cells are skipped on restart")
		workers    = flag.Int("workers", 0, "worker pool size for concurrent sweep cells (0 = GOMAXPROCS; 1 = the historical serial order)")
		jsonOut    = flag.String("json", "", "write a benchmark-regression JSON record (ns + headline metrics per experiment) to this path")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this path")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (taken after the sweep) to this path")
		compare    = flag.Bool("compare", false, "compare two -json records (old.json new.json) instead of running a sweep; exits 1 on regression")
		maxRegress = flag.Float64("max-regress", 1.10, "with -compare: fail when any experiment's ns ratio exceeds this (<= 0 disables the ns gate)")
		metricTol  = flag.Float64("metric-tol", 0, "with -compare: allowed relative drift per metric (0 = bit-identical)")
		noiseFloor = flag.Duration("noise-floor", 200*time.Millisecond, "with -compare: experiments faster than this on both sides are never ns-gated")

		coordinator  = flag.String("coordinator", "", "run as sweep coordinator bound to this address (e.g. 127.0.0.1:7070); requires -checkpoint and a distributable -exp")
		leaseTTL     = flag.Duration("lease-ttl", 30*time.Second, "with -coordinator: lease TTL; a worker silent this long loses its cell")
		cellAttempts = flag.Int("cell-attempts", 3, "with -coordinator: lease grants per cell before dead-letter quarantine")
		localAfter   = flag.Duration("local-after", 10*time.Second, "with -coordinator: fall back to in-process execution when no worker joins within this window (0 = immediately)")
	)
	flag.Parse()

	// Compare mode: stpt-bench -compare old.json new.json. No sweep runs;
	// the process exits non-zero on an ns regression or metric drift.
	if *compare {
		if flag.NArg() != 2 {
			fatalf("usage: stpt-bench -compare old.json new.json")
		}
		os.Exit(runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *maxRegress, *metricTol, noiseFloor.Nanoseconds()))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	var opts experiments.Options
	switch *scale {
	case "quick":
		opts = experiments.Quick()
	case "bench":
		opts = experiments.Bench()
	case "paper":
		opts = experiments.Paper()
	default:
		fatalf("unknown scale %q", *scale)
	}
	opts.Seed = *seed
	if *reps > 0 {
		opts.Reps = *reps
	}
	opts.Workers = parallel.Workers(*workers)
	opts.Retry = resilience.DefaultPolicy()
	if *checkpoint != "" {
		// One writer per checkpoint file: two sweeps resuming the same
		// file would interleave whole-file rewrites and silently drop
		// each other's cells.
		release, err := resilience.AcquireFileLock(*checkpoint)
		if err != nil {
			fatalf("%v", err)
		}
		defer release() //nolint:errcheck // beyond releasing there is nothing to do
		ck, err := resilience.OpenCheckpoint(*checkpoint)
		if err != nil {
			fatalf("%v", err)
		}
		if n := ck.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "stpt-bench: resuming from %s (%d completed cells)\n", *checkpoint, n)
		}
		opts.Checkpoint = ck
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Coordinator mode: farm the sweep's cells out to stpt-sweep workers
	// (or fall back in-process), filling the checkpoint; the normal run
	// path below then reduces it with every cell cached, so the printed
	// tables are bit-identical to a serial run.
	if *coordinator != "" {
		err := runCoordinator(ctx, opts, coordinatorConfig{
			Addr:        *coordinator,
			Experiment:  *exp,
			Dataset:     *dataset,
			Layout:      *layout,
			TTL:         *leaseTTL,
			MaxAttempts: *cellAttempts,
			LocalAfter:  *localAfter,
			Checkpoint:  *checkpoint,
		})
		if err != nil {
			fatalf("coordinator: %v%s", err, resumeHint(*checkpoint))
		}
	}

	w := os.Stdout
	start := time.Now()
	records := map[string]benchRecord{}
	run := func(name string, fn func() (map[string]float64, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		expStart := time.Now()
		metrics, err := fn()
		if err == nil {
			records[name] = benchRecord{Ns: time.Since(expStart).Nanoseconds(), Metrics: metrics}
			return
		}
		if errors.Is(err, context.DeadlineExceeded) {
			fatalf("%s: exceeded -timeout %s%s", name, *timeout, resumeHint(*checkpoint))
		}
		if errors.Is(err, context.Canceled) {
			fatalf("%s: interrupted%s", name, resumeHint(*checkpoint))
		}
		fatalf("%s: %v", name, err)
	}

	run("table2", func() (map[string]float64, error) {
		rows, err := experiments.RunTable2Context(ctx, opts)
		if err != nil {
			return nil, err
		}
		experiments.PrintTable2(w, rows)
		return map[string]float64{"cer_mean_kwh": rows[0].Measured.Mean}, nil
	})
	run("fig9", func() (map[string]float64, error) {
		rows := experiments.RunFig9(opts)
		experiments.PrintFig9(w, rows)
		weekend := (rows[0].Totals[5] + rows[0].Totals[6]) / 2
		weekday := (rows[0].Totals[0] + rows[0].Totals[1] + rows[0].Totals[2] + rows[0].Totals[3] + rows[0].Totals[4]) / 5
		return map[string]float64{"cer_weekend_lift": weekend / weekday}, nil
	})
	run("fig6", func() (map[string]float64, error) {
		rows, err := experiments.RunFig6Context(ctx, opts)
		if err != nil {
			return nil, err
		}
		experiments.PrintFig6(w, rows)
		var results [][]experiments.AlgResult
		for _, r := range rows {
			results = append(results, r.Results)
		}
		return stptMRE(results), nil
	})
	run("fig6-single", func() (map[string]float64, error) {
		spec, err := datasets.ByName(*dataset)
		if err != nil {
			return nil, err
		}
		lay, err := datasets.ParseLayout(*layout)
		if err != nil {
			return nil, err
		}
		row, err := experiments.RunFig6SingleContext(ctx, opts, spec, lay)
		if err != nil {
			return nil, err
		}
		experiments.PrintFig6(w, []experiments.Fig6Row{row})
		return stptMRE([][]experiments.AlgResult{row.Results}), nil
	})
	run("fig7", func() (map[string]float64, error) {
		rows, err := experiments.RunFig7Context(ctx, opts)
		if err != nil {
			return nil, err
		}
		experiments.PrintFig7(w, rows)
		var results [][]experiments.AlgResult
		for _, r := range rows {
			results = append(results, r.Results)
		}
		return stptMRE(results), nil
	})
	run("fig8ab", func() (map[string]float64, error) {
		pts, err := experiments.RunFig8PatternBudgetContext(ctx, opts)
		if err != nil {
			return nil, err
		}
		experiments.PrintSweepPattern(w, "Figure 8(a,b): pattern error vs per-datapoint budget", pts)
		return sweepPattern(pts), nil
	})
	run("fig8c", func() (map[string]float64, error) {
		pts, err := experiments.RunFig8QuantizationContext(ctx, opts)
		if err != nil {
			return nil, err
		}
		experiments.PrintSweepMRE(w, "Figure 8(c): impact of quantization levels", pts)
		return sweepMRE(pts), nil
	})
	run("fig8d", func() (map[string]float64, error) {
		rows, err := experiments.RunFig8RuntimeContext(ctx, opts)
		if err != nil {
			return nil, err
		}
		experiments.PrintRuntimes(w, rows)
		m := map[string]float64{}
		for _, r := range rows {
			m["seconds_"+r.Name] = r.Seconds
		}
		return m, nil
	})
	run("fig8ef", func() (map[string]float64, error) {
		pts, err := experiments.RunFig8TreeDepthContext(ctx, opts)
		if err != nil {
			return nil, err
		}
		experiments.PrintSweepPattern(w, "Figure 8(e,f): pattern error vs quadtree depth", pts)
		return sweepPattern(pts), nil
	})
	run("fig8g", func() (map[string]float64, error) {
		pts, err := experiments.RunFig8BudgetSplitContext(ctx, opts)
		if err != nil {
			return nil, err
		}
		experiments.PrintSweepMRE(w, "Figure 8(g): budget share for pattern recognition", pts)
		return sweepMRE(pts), nil
	})
	run("fig8h", func() (map[string]float64, error) {
		pts, err := experiments.RunFig8TotalBudgetContext(ctx, opts)
		if err != nil {
			return nil, err
		}
		experiments.PrintSweepMRE(w, "Figure 8(h): total privacy budget", pts)
		return sweepMRE(pts), nil
	})
	run("fig8i", func() (map[string]float64, error) {
		pts, err := experiments.RunFig8ModelsContext(ctx, opts)
		if err != nil {
			return nil, err
		}
		experiments.PrintSweepMRE(w, "Figure 8(i): distinct ML models", pts)
		return sweepMRE(pts), nil
	})
	run("ldp", func() (map[string]float64, error) {
		rows, err := experiments.RunLDPExtensionContext(ctx, opts)
		if err != nil {
			return nil, err
		}
		experiments.PrintLDPExtension(w, rows)
		var results [][]experiments.AlgResult
		for _, r := range rows {
			results = append(results, r.Results)
		}
		return stptMRE(results), nil
	})
	run("extended", func() (map[string]float64, error) {
		rows, err := experiments.RunExtendedContext(ctx, opts)
		if err != nil {
			return nil, err
		}
		experiments.PrintExtended(w, rows)
		var results [][]experiments.AlgResult
		for _, r := range rows {
			results = append(results, r.Results)
		}
		return stptMRE(results), nil
	})
	run("ablations", func() (map[string]float64, error) {
		rows, err := experiments.RunAblationsContext(ctx, opts)
		if err != nil {
			return nil, err
		}
		experiments.PrintAblations(w, rows)
		m := map[string]float64{}
		for _, r := range rows {
			m["mre_random_stpt"] = r.Full.MRE[query.Random]
			m["mre_random_"+r.Name] = r.Ablated.MRE[query.Random]
		}
		return m, nil
	})

	fmt.Fprintf(w, "done in %s (scale %s, exp %s, %d workers)\n",
		time.Since(start).Round(time.Millisecond), *scale, *exp, opts.Workers)

	if *jsonOut != "" {
		report := benchReport{
			Scale: *scale, Workers: opts.Workers, Reps: opts.Reps, Seed: opts.Seed,
			Experiments: records, TotalNs: time.Since(start).Nanoseconds(),
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "stpt-bench: wrote regression record to %s\n", *jsonOut)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatalf("%v", err)
		}
		runtime.GC() // settle the heap so the profile shows retained allocations
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("memprofile: %v", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "stpt-bench: wrote heap profile to %s\n", *memProfile)
	}
}

// stptMRE averages the STPT slot's per-class MRE over the given rows of
// a comparison table — the headline regression metric per figure.
func stptMRE(rows [][]experiments.AlgResult) map[string]float64 {
	m := map[string]float64{}
	n := 0
	for _, results := range rows {
		for _, r := range results {
			if r.Name != "stpt" {
				continue
			}
			for c, v := range r.MRE {
				m["stpt_mre_"+c.String()] += v
			}
			n++
		}
	}
	for k := range m {
		m[k] /= float64(n)
	}
	return m
}

// sweepMRE averages per-class MRE across a sweep's points.
func sweepMRE(pts []experiments.SweepPoint) map[string]float64 {
	m := map[string]float64{}
	for _, p := range pts {
		for c, v := range p.MRE {
			m["mre_"+c.String()] += v
		}
	}
	for k := range m {
		m[k] /= float64(len(pts))
	}
	return m
}

// sweepPattern averages MAE/RMSE across a sweep's points.
func sweepPattern(pts []experiments.SweepPoint) map[string]float64 {
	var mae, rmse float64
	for _, p := range pts {
		mae += p.MAE
		rmse += p.RMSE
	}
	n := float64(len(pts))
	return map[string]float64{"mae": mae / n, "rmse": rmse / n}
}

// resumeHint tells an interrupted user how to pick the sweep back up.
func resumeHint(checkpoint string) string {
	if checkpoint == "" {
		return " (no -checkpoint set; completed work is lost)"
	}
	return fmt.Sprintf(" (progress saved to %s; rerun with the same -checkpoint to resume)", checkpoint)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "stpt-bench: "+format+"\n", args...)
	os.Exit(1)
}
