// Command stpt-sweep is a distributed-sweep worker: it joins a
// stpt-bench coordinator, leases (dataset, algorithm, rep) cells one at
// a time, executes them, and uploads the results. Workers are fully
// disposable — SIGKILL one mid-cell and its lease expires and the cell
// is reassigned; start another at any time and it picks up whatever is
// pending. All durable state lives in the coordinator's journal.
//
// Usage:
//
//	stpt-sweep -join 127.0.0.1:7070
//	stpt-sweep -join bench-host:7070 -cells 4 -id lab-machine-3
//
// -cells runs that many lease loops concurrently (one cell each at a
// time). Ctrl-C finishes nothing: in-flight cells are simply abandoned
// to lease expiry, which is always safe because cells are idempotent.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/experiments"
)

func main() {
	var (
		join    = flag.String("join", "", "coordinator address (host:port or http://host:port); required")
		id      = flag.String("id", "", "worker id shown in coordinator logs (default host-pid)")
		cells   = flag.Int("cells", 1, "concurrent cells to execute")
		poll    = flag.Duration("poll", 500*time.Millisecond, "idle backoff between lease requests when no cell is available")
		verbose = flag.Bool("v", false, "log every lease and delivery")
	)
	flag.Parse()
	if *join == "" {
		fatalf("usage: stpt-sweep -join <coordinator host:port>")
	}
	if *cells < 1 {
		*cells = 1
	}
	if *id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	base := *join
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cl := &dist.Client{
		Base:   base,
		Worker: *id,
		Poll:   *poll,
		Retry:  dist.SweepRetryPolicy(),
	}
	if *verbose {
		cl.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	reply, err := cl.Join(ctx)
	if err != nil {
		fatalf("joining %s: %v", base, err)
	}
	spec, err := experiments.DecodeSweepSpec(reply.Spec)
	if err != nil {
		fatalf("coordinator served an unusable sweep spec: %v", err)
	}
	runner, err := experiments.NewCellRunner(spec)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "stpt-sweep: %s joined %s: experiment %s, %d cells total, %d concurrent\n",
		*id, base, reply.Experiment, reply.Total, *cells)

	// Each loop leases and executes one cell at a time; the coordinator
	// keys leases by lease id, so concurrent loops under one worker id
	// are independent.
	var delivered atomic.Int64
	errs := make([]error, *cells)
	var wg sync.WaitGroup
	for i := 0; i < *cells; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, err := cl.Run(ctx, runner.Execute)
			delivered.Add(int64(n))
			errs[i] = err
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err == nil || errors.Is(err, context.Canceled) {
			continue
		}
		fatalf("after %d cells: %v", delivered.Load(), err)
	}
	if err := ctx.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "stpt-sweep: interrupted after %d cells; in-flight leases will expire and be reassigned\n", delivered.Load())
		os.Exit(130)
	}
	fmt.Fprintf(os.Stderr, "stpt-sweep: sweep complete, %s delivered %d cells\n", *id, delivered.Load())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "stpt-sweep: "+format+"\n", args...)
	os.Exit(1)
}
