package main

import (
	"bufio"
	"bytes"
	"io"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// The end-to-end drill with the real binaries: a stpt-bench coordinator
// farms a quick-scale fig6-single row to stpt-sweep workers, one worker
// is SIGKILLed mid-sweep, and the coordinator's printed tables must be
// identical to a plain serial run (modulo the wall-clock "done in"
// line). This is the same scenario the CI smoke job runs from shell.

func buildBin(t *testing.T, dir, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	build := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// stripTimings drops the wall-clock line — the only nondeterministic
// part of stpt-bench stdout.
func stripTimings(out []byte) string {
	var keep []string
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "done in ") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

func TestDistributedSweepEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binaries")
	}
	dir := t.TempDir()
	bench := buildBin(t, dir, "repro/cmd/stpt-bench", "stpt-bench")
	sweep := buildBin(t, dir, "repro/cmd/stpt-sweep", "stpt-sweep")
	expArgs := []string{"-exp", "fig6-single", "-dataset", "CA", "-layout", "uniform", "-scale", "quick"}

	// Serial golden run.
	serial := exec.Command(bench, append(expArgs, "-checkpoint", filepath.Join(dir, "serial-ck.json"))...)
	serialOut, err := serial.Output()
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}

	// Coordinator on an ephemeral port; -local-after is high so the work
	// genuinely goes through the workers.
	distCk := filepath.Join(dir, "dist-ck.json")
	coord := exec.Command(bench, append(expArgs,
		"-checkpoint", distCk, "-coordinator", "127.0.0.1:0",
		"-lease-ttl", "2s", "-local-after", "10m")...)
	var coordOut bytes.Buffer
	coord.Stdout = &coordOut
	stderr, err := coord.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	coordDone := make(chan error, 1)
	defer func() {
		coord.Process.Kill()
		<-coordDone
	}()

	// Scan coordinator stderr for the bound address (and keep draining
	// so the child never blocks on a full pipe).
	addrCh := make(chan string, 1)
	var logMu sync.Mutex
	var coordLog bytes.Buffer
	go func() {
		re := regexp.MustCompile(`stpt-sweep -join (\S+)`)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			logMu.Lock()
			coordLog.WriteString(sc.Text() + "\n")
			logMu.Unlock()
			if m := re.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	go func() { coordDone <- coord.Wait() }()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-coordDone:
		coordDone <- err
		t.Fatalf("coordinator exited before serving (%v)", err)
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator never announced its address")
	}

	// The checkpoint lock: a second stpt-bench on the same file must be
	// refused while the coordinator holds it.
	conflict := exec.Command(bench, append(expArgs, "-checkpoint", distCk)...)
	conflictOut, err := conflict.CombinedOutput()
	if err == nil {
		t.Fatalf("second sweep on a locked checkpoint succeeded:\n%s", conflictOut)
	}
	if !strings.Contains(string(conflictOut), "locked by running process") {
		t.Fatalf("conflicting sweep failed for the wrong reason:\n%s", conflictOut)
	}

	// Victim worker: started alone, SIGKILLed mid-sweep.
	victim := exec.Command(sweep, "-join", addr, "-id", "victim", "-poll", "50ms")
	victim.Stdout, victim.Stderr = io.Discard, io.Discard
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.Wait() //nolint:errcheck // killed on purpose

	// Survivor drains the rest, including the victim's expired leases.
	survivor := exec.Command(sweep, "-join", addr, "-id", "survivor", "-poll", "50ms")
	if out, err := survivor.CombinedOutput(); err != nil {
		t.Fatalf("survivor: %v\n%s", err, out)
	}

	select {
	case err := <-coordDone:
		coordDone <- err
		if err != nil {
			logMu.Lock()
			defer logMu.Unlock()
			t.Fatalf("coordinator: %v\n%s", err, coordLog.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator never finished after the survivor drained the sweep")
	}

	if got, want := stripTimings(coordOut.Bytes()), stripTimings(serialOut); got != want {
		t.Fatalf("distributed tables differ from serial run\n--- distributed ---\n%s\n--- serial ---\n%s", got, want)
	}
}
