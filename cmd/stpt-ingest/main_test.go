package main

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestOneShotLedgerRefusal builds the real binary and runs the one-shot
// pipeline twice against a tight lifetime budget: the first publication
// succeeds and charges the ledger, the second is refused with a
// non-zero exit and no overwritten release.
func TestOneShotLedgerRefusal(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "stpt-ingest")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	input := filepath.Join(dir, "readings.csv")
	if err := os.WriteFile(input, []byte("0,0,0,1.5\n1,1,1,2\n3,3,3,4\nbad,line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	release := filepath.Join(dir, "release.csv")
	run := func(wal string) (string, error) {
		cmd := exec.Command(bin,
			"-wal", filepath.Join(dir, wal), "-grid", "4", "-t", "4",
			"-in", input, "-dead-letter", filepath.Join(dir, "dead.jsonl"),
			"-publish", release, "-ledger", filepath.Join(dir, "budget.ledger"),
			"-budget", "30", "-eps-sanitize", "20", "-dataset", "meters")
		var buf bytes.Buffer
		cmd.Stdout, cmd.Stderr = &buf, &buf
		err := cmd.Run()
		return buf.String(), err
	}

	out, err := run("epoch1.wal")
	if err != nil {
		t.Fatalf("first run failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "accepted 3, quarantined 1") {
		t.Fatalf("first run output: %s", out)
	}
	firstRelease, err := os.ReadFile(release)
	if err != nil {
		t.Fatal(err)
	}

	// Second epoch would need 20 more ε against a lifetime 30: refused,
	// non-zero exit, release untouched.
	out, err = run("epoch2.wal")
	if err == nil {
		t.Fatalf("over-budget run exited 0\n%s", out)
	}
	var exitErr *exec.ExitError
	if !strings.Contains(out, "budget") || !strings.Contains(out, "refusing") {
		t.Fatalf("refusal output: %s", out)
	}
	if !errors.As(err, &exitErr) || exitErr.ExitCode() == 0 {
		t.Fatalf("exit status: %v", err)
	}
	after, err := os.ReadFile(release)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(firstRelease, after) {
		t.Fatal("refused publication overwrote the release")
	}

	// Dead letter recorded the malformed line across both runs.
	dead, err := os.ReadFile(filepath.Join(dir, "dead.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(dead, []byte("\n")); got != 2 {
		t.Fatalf("dead letter has %d records, want 2 (one per run)", got)
	}
}
