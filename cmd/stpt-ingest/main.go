// Command stpt-ingest runs the durable streaming ingester: household
// readings (x,y,t,value lines) arrive on stdin, from a file, or over
// HTTP, every accepted batch is write-ahead-logged before it touches the
// consumption matrix, malformed records are quarantined to a dead-letter
// file, and closing the epoch publishes an atomic snapshot gated by the
// crash-safe privacy-budget ledger. Restarting after a crash replays the
// WAL to the identical matrix.
//
// One-shot (stream in, publish, exit):
//
//	stpt-ingest -wal epoch.wal -grid 16 -t 60 -in readings.csv \
//	    -publish release.csv -ledger budget.ledger -budget 60 -eps-sanitize 20
//
// Daemon (HTTP ingestion; POST /-/publish closes the epoch):
//
//	stpt-ingest -wal epoch.wal -grid 16 -t 60 -listen :8090 -token s3cret \
//	    -publish release.csv -ledger budget.ledger -budget 60
//
// A publication that would exceed the lifetime budget is refused: the
// typed ledger error goes to stderr and the process exits non-zero (the
// HTTP daemon answers 409 Conflict and keeps ingesting).
//
// Disk use is bounded: the WAL is folded into a checksummed snapshot
// once -compact-batches batches or -compact-bytes of log accumulate
// (or on POST /-/compact), the dead-letter file rotates at
// -dead-letter-max, and -ledger-compact folds settled ledger lines
// into a one-line checkpoint at startup. An http(s):// -in source is
// fetched with bounded retries (-source-retries) honoring Retry-After.
// While the disk is full the daemon answers 503 with Retry-After and
// resumes, losing nothing, once space returns.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/dp"
	"repro/internal/ingest"
)

func main() {
	var (
		walPath    = flag.String("wal", "", "write-ahead log path; required (replayed on start)")
		gridSide   = flag.Int("grid", 16, "spatial grid side (Cx = Cy)")
		tLen       = flag.Int("t", 0, "number of time intervals; required")
		inPath     = flag.String("in", "", "input CSV of readings ('-' or empty = stdin; ignored with -listen)")
		deadPath   = flag.String("dead-letter", "", "quarantine file for malformed records (JSONL; default: no file, counted only)")
		batch      = flag.Int("batch", 256, "readings per WAL append+fsync")
		listen     = flag.String("listen", "", "serve HTTP ingestion on this address instead of reading -in")
		token      = flag.String("token", "", "bearer token required on mutating HTTP endpoints")
		publish    = flag.String("publish", "", "publish the epoch snapshot to this file (atomic write)")
		ledgerPath = flag.String("ledger", "", "privacy-budget ledger file; publication charges it first")
		budget     = flag.Float64("budget", 0, "lifetime ε budget per dataset enforced through -ledger (0 = record only)")
		datasetF   = flag.String("dataset", "", "dataset name charged in the ledger (default: the -publish file name)")
		epsP       = flag.Float64("eps-pattern", 0, "ε charged as pattern budget per publication")
		epsS       = flag.Float64("eps-sanitize", 0, "ε charged as sanitisation budget per publication")
		compactN   = flag.Int("compact-batches", 1024, "fold the WAL into a snapshot every N committed batches (0 = only on demand)")
		compactB   = flag.Int64("compact-bytes", 64<<20, "fold the WAL into a snapshot once the active segment exceeds this many bytes (0 = only on demand)")
		deadMax    = flag.Int64("dead-letter-max", ingest.DefaultDeadLetterMax, "rotate the dead-letter file past this many bytes; one rotated generation is kept, older records are dropped and counted")
		srcRetries = flag.Int("source-retries", 5, "attempts when -in is an http(s):// URL (deterministic backoff, honours Retry-After)")
		ledgerComp = flag.Bool("ledger-compact", false, "fold the ledger's settled entries into a checkpoint line on startup (spending is preserved exactly)")
	)
	flag.Parse()
	if *walPath == "" {
		fatalf("missing -wal")
	}
	if *tLen <= 0 {
		fatalf("missing -t (number of time intervals)")
	}
	if *listen == "" && *publish == "" {
		fatalf("nothing to do: give -publish (and usually -in) for one-shot mode, or -listen for the daemon")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var err error
	cfg := ingest.Config{
		Cx: *gridSide, Cy: *gridSide, Ct: *tLen, BatchSize: *batch,
		CompactBatches: *compactN, CompactBytes: *compactB,
	}
	if *deadPath != "" {
		dead, err := ingest.OpenDeadLetter(*deadPath, *deadMax)
		if err != nil {
			fatalf("%v", err)
		}
		defer dead.Close()
		cfg.DeadLetter = dead
	}
	in, err := ingest.New(cfg, *walPath)
	if err != nil {
		fatalf("%v", err)
	}
	defer in.Close()
	if replayed := in.Stats().Replayed; replayed > 0 {
		fmt.Fprintf(os.Stderr, "stpt-ingest: replayed %d readings from %s\n", replayed, *walPath)
	}

	var ledger *dp.Ledger
	if *ledgerPath != "" {
		ledger, err = dp.OpenLedger(*ledgerPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer ledger.Close()
		if *ledgerComp {
			if err := ledger.Compact(ctx); err != nil {
				fatalf("compacting ledger: %v", err)
			}
			if n := ledger.Compacted(); n > 0 {
				fmt.Fprintf(os.Stderr, "stpt-ingest: ledger checkpoint folds %d entries\n", n)
			}
		}
	}
	dataset := *datasetF
	if dataset == "" && *publish != "" {
		dataset = filepath.Base(*publish)
	}
	doPublish := func() error {
		err := in.Publish(ctx, *publish, ledger,
			dp.LedgerEntry{Dataset: dataset, Algorithm: "ingest", EpsPattern: *epsP, EpsSanitize: *epsS},
			*budget)
		if err == nil {
			fmt.Fprintf(os.Stderr, "stpt-ingest: published %s\n", *publish)
		}
		return err
	}

	if *listen != "" {
		serveHTTP(ctx, in, *listen, *token, *publish, doPublish)
		return
	}

	var src io.Reader = os.Stdin
	switch {
	case strings.HasPrefix(*inPath, "http://"), strings.HasPrefix(*inPath, "https://"):
		p := ingest.DefaultSourcePolicy()
		p.MaxAttempts = *srcRetries
		body, err := ingest.FetchHTTP(ctx, nil, *inPath, p)
		if err != nil {
			fatalf("%v", err)
		}
		defer body.Close()
		src = body
	case *inPath != "" && *inPath != "-":
		f, err := os.Open(*inPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		src = f
	}
	accepted, quarantined, err := in.Ingest(ctx, src)
	fmt.Fprintf(os.Stderr, "stpt-ingest: accepted %d, quarantined %d\n", accepted, quarantined)
	if err != nil {
		// Everything committed before the fault is durable in the WAL; the
		// next run replays it.
		fatalf("%v", err)
	}
	if err := doPublish(); err != nil {
		if errors.Is(err, dp.ErrBudgetExhausted) {
			fatalf("refusing to publish: %v", err)
		}
		fatalf("%v", err)
	}
}

// serveHTTP runs the ingestion daemon until the context is cancelled,
// then drains in-flight requests.
func serveHTTP(ctx context.Context, in *ingest.Ingester, addr, token, publishPath string, doPublish func() error) {
	hcfg := ingest.HandlerConfig{Token: token}
	if publishPath != "" {
		hcfg.Publish = doPublish
	}
	srv := &http.Server{Addr: addr, Handler: ingest.Handler(in, hcfg)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "stpt-ingest: listening on %s\n", addr)
	select {
	case err := <-errc:
		fatalf("%v", err)
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fatalf("shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "stpt-ingest: drained")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "stpt-ingest: "+format+"\n", args...)
	os.Exit(1)
}
