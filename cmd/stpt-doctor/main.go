// Command stpt-doctor is the offline cross-artifact integrity auditor
// and repair tool for a continual-release deployment. It proves the
// invariants no single artifact can witness alone — every published
// manifest window has an on-disk release with the journalled checksum,
// the ledger's spent ε equals the tree composition's expected spend for
// the manifest tip, WAL coverage is gapless up to the snapshot
// high-water, and (given a peer) every catalog file's local bytes match
// the peer's catalog — then prints the findings as a typed repair plan.
//
//	stpt-doctor -out data/out -ledger data/ledger -wal data/feed.wal \
//	            -dataset stream -eps-node 0.5            # read-only audit
//	stpt-doctor -out data/out ... -repair                # execute the plan
//	stpt-doctor -peer http://leader:8080 -data-dir data  # replica audit
//
// Exit status: 0 when every configured invariant holds (after repair,
// if requested), 1 when error findings remain, 2 on usage or audit
// failure. Read-only by default, so it is safe in CI and against live
// daemons: journals are scanned without truncation and window files
// without locks.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro/internal/scrub"
)

func main() {
	var (
		out         = flag.String("out", "", "pipeline output directory (window files, latest.csv, staging/)")
		manifest    = flag.String("manifest", "", "window manifest path (default <out>/manifest when -out is set)")
		ledger      = flag.String("ledger", "", "ε-ledger path")
		dataset     = flag.String("dataset", "stream", "ledger dataset name the pipeline charges")
		epsNode     = flag.Float64("eps-node", 0, "per-tree-node ε the pipeline was run with (enables the spend invariant)")
		sensitivity = flag.Float64("sensitivity", 1, "per-cell L1 sensitivity (parameterises release rebuilds)")
		wal         = flag.String("wal", "", "ingest WAL path (enables gapless-coverage proof)")
		peer        = flag.String("peer", "", "healthy replica base URL, e.g. http://host:8080 (enables replica checks)")
		dataDir     = flag.String("data-dir", "", "local release directory audited against -peer's catalog")
		repair      = flag.Bool("repair", false, "execute the repair plan, then re-audit to confirm clean")
		asJSON      = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()

	if *manifest == "" && *out != "" {
		*manifest = filepath.Join(*out, "manifest")
	}
	cfg := scrub.FsckConfig{
		OutDir:      *out,
		Manifest:    *manifest,
		Ledger:      *ledger,
		Dataset:     *dataset,
		EpsNode:     *epsNode,
		Sensitivity: *sensitivity,
		WAL:         *wal,
		Peer:        *peer,
		DataDir:     *dataDir,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := scrub.Fsck(ctx, cfg)
	if err != nil {
		fatalf("%v", err)
	}
	if *repair && rep.Errors() > 0 {
		applied, err := scrub.Apply(ctx, cfg, rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stpt-doctor: repair stopped after %d step(s): %v\n", applied, err)
		} else {
			fmt.Fprintf(os.Stderr, "stpt-doctor: applied %d repair(s); re-auditing\n", applied)
		}
		// Always re-audit: the exit status reports the state the disk is
		// actually in, not the state the plan promised.
		if rep, err = scrub.Fsck(ctx, cfg); err != nil {
			fatalf("%v", err)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatalf("%v", err)
		}
	} else {
		printReport(rep)
	}
	if rep.Errors() > 0 {
		os.Exit(1)
	}
}

func printReport(rep *scrub.Report) {
	fmt.Printf("stpt-doctor: %d invariant(s) checked, %d finding(s) (%d error(s))\n",
		rep.Checked, len(rep.Findings), rep.Errors())
	for _, f := range rep.Findings {
		fmt.Printf("  [%s] %s %s: %s\n", f.Severity, f.Code, f.Artifact, f.Detail)
		if f.Repair != nil {
			fmt.Printf("        repair: %s", f.Repair.Kind)
			if f.Repair.Source != "" {
				fmt.Printf(" from %s", f.Repair.Source)
			}
			fmt.Println()
		}
	}
	if rep.Errors() == 0 {
		fmt.Println("stpt-doctor: all checked invariants hold")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "stpt-doctor: "+format+"\n", args...)
	os.Exit(2)
}
