package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// buildPipelineBin compiles the real binary once per test dir.
func buildPipelineBin(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "stpt-pipeline")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// cliFeed renders one reading per (x,y,t) cell on a 2×2 grid over tMax
// intervals.
func cliFeed(tMax int) string {
	var sb strings.Builder
	for ti := 0; ti < tMax; ti++ {
		for y := 0; y < 2; y++ {
			for x := 0; x < 2; x++ {
				fmt.Fprintf(&sb, "%d,%d,%d,%g\n", x, y, ti, float64(1+x+2*y+4*ti)/4)
			}
		}
	}
	return sb.String()
}

// TestOneShotPublishesEveryWindow builds the binary and drives a full
// stream through one-shot mode: all four windows land, latest.csv is
// the newest, and a re-run over the same WAL is a clean no-op.
func TestOneShotPublishesEveryWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	dir := t.TempDir()
	bin := buildPipelineBin(t, dir)

	input := filepath.Join(dir, "readings.csv")
	if err := os.WriteFile(input, []byte(cliFeed(12)), 0o644); err != nil {
		t.Fatal(err)
	}
	empty := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out")
	run := func(in string) (string, error) {
		cmd := exec.Command(bin,
			"-wal", filepath.Join(dir, "feed.wal"), "-grid", "2", "-t", "12",
			"-window", "3", "-in", in, "-out", out,
			"-ledger", filepath.Join(dir, "budget.ledger"),
			"-eps-node", "0.5", "-budget", "4", "-seed", "42")
		var buf bytes.Buffer
		cmd.Stdout, cmd.Stderr = &buf, &buf
		err := cmd.Run()
		return buf.String(), err
	}

	log, err := run(input)
	if err != nil {
		t.Fatalf("one-shot run failed: %v\n%s", err, log)
	}
	if !strings.Contains(log, "4 windows published") {
		t.Fatalf("one-shot output: %s", log)
	}
	var windows [4][]byte
	for w := 1; w <= 4; w++ {
		b, err := os.ReadFile(filepath.Join(out, fmt.Sprintf("window-%06d.csv", w)))
		if err != nil {
			t.Fatalf("window %d missing: %v", w, err)
		}
		windows[w-1] = b
	}
	latest, err := os.ReadFile(filepath.Join(out, "latest.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(latest, windows[3]) {
		t.Fatal("latest.csv is not the newest window")
	}

	// Same WAL, nothing new to say: the manifest resumes at the tip and
	// publishes nothing — the files do not change.
	log, err = run(empty)
	if err != nil {
		t.Fatalf("idle re-run failed: %v\n%s", err, log)
	}
	if !strings.Contains(log, "manifest resumes at window 4, state reloaded") {
		t.Fatalf("re-run did not resume from the manifest: %s", log)
	}
	again, err := os.ReadFile(filepath.Join(out, "window-000004.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, windows[3]) {
		t.Fatal("idle re-run rewrote a published window")
	}
}

// TestDaemonIngestToPublish runs the binary as the long-lived daemon:
// readings arrive over HTTP, windows publish as their spans complete,
// the reload notifier rings once per window, and SIGINT drains cleanly.
func TestDaemonIngestToPublish(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	dir := t.TempDir()
	bin := buildPipelineBin(t, dir)

	// Count authenticated reload notifications from the daemon.
	var reloads atomic.Int64
	notify := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.Header.Get("Authorization") != "Bearer sesame" {
			w.WriteHeader(http.StatusForbidden)
			return
		}
		reloads.Add(1)
	}))
	defer notify.Close()

	// Grab a free port; the tiny reuse window is fine for a smoke test.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	cmd := exec.Command(bin,
		"-wal", filepath.Join(dir, "feed.wal"), "-grid", "2", "-t", "12",
		"-window", "3", "-listen", addr, "-token", "s3cret",
		"-out", filepath.Join(dir, "out"),
		"-ledger", filepath.Join(dir, "budget.ledger"),
		"-eps-node", "0.5", "-budget", "4", "-seed", "42",
		"-interval", "50ms",
		"-reload-url", notify.URL, "-reload-token", "sesame")
	var buf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &buf, &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	defer cmd.Process.Kill()

	base := "http://" + addr
	waitFor := func(desc string, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for !ok() {
			select {
			case err := <-done:
				t.Fatalf("daemon exited waiting for %s (%v)\n%s", desc, err, buf.String())
			default:
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s\n%s", desc, buf.String())
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitFor("daemon to listen", func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})

	req, _ := http.NewRequest(http.MethodPost, base+"/ingest", strings.NewReader(cliFeed(12)))
	req.Header.Set("Authorization", "Bearer s3cret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /ingest: %d", resp.StatusCode)
	}

	published := func() int {
		resp, err := http.Get(base + "/status")
		if err != nil {
			return -1
		}
		defer resp.Body.Close()
		var st struct {
			Published int `json:"published"`
		}
		json.NewDecoder(resp.Body).Decode(&st)
		return st.Published
	}
	waitFor("all four windows to publish", func() bool { return published() == 4 })
	waitFor("four reload notifications", func() bool { return reloads.Load() == 4 })

	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}

	// SIGINT drains: clean exit, windows on disk.
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit after SIGINT: %v\n%s", err, buf.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon never drained\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "drained") {
		t.Fatalf("daemon log: %s", buf.String())
	}
	for w := 1; w <= 4; w++ {
		if _, err := os.Stat(filepath.Join(dir, "out", fmt.Sprintf("window-%06d.csv", w))); err != nil {
			t.Fatalf("window %d missing after drain: %v", w, err)
		}
	}
}

// TestOneShotBudgetExhaustionExitsTwo: a budget too small for the whole
// stream publishes what it can and exits with the dedicated status 2,
// so schedulers can tell a budget refusal from a crash.
func TestOneShotBudgetExhaustionExitsTwo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	dir := t.TempDir()
	bin := buildPipelineBin(t, dir)

	input := filepath.Join(dir, "readings.csv")
	if err := os.WriteFile(input, []byte(cliFeed(12)), 0o644); err != nil {
		t.Fatal(err)
	}
	// ε_node 0.5, budget 1.0: windows 1–3 fit (levels 0+1), window 4
	// opens tree level 2 and must be refused.
	cmd := exec.Command(bin,
		"-wal", filepath.Join(dir, "feed.wal"), "-grid", "2", "-t", "12",
		"-window", "3", "-in", input, "-out", filepath.Join(dir, "out"),
		"-ledger", filepath.Join(dir, "budget.ledger"),
		"-eps-node", "0.5", "-budget", "1")
	var buf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &buf, &buf
	err := cmd.Run()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
		t.Fatalf("exhausted run: %v, want exit 2\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "budget exhausted after 3 windows") {
		t.Fatalf("exhaustion output: %s", buf.String())
	}
	for w := 1; w <= 3; w++ {
		if _, err := os.Stat(filepath.Join(dir, "out", fmt.Sprintf("window-%06d.csv", w))); err != nil {
			t.Fatalf("window %d vanished on refusal: %v", w, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "out", "window-000004.csv")); err == nil {
		t.Fatal("refused window 4 was published anyway")
	}
}
