// Command stpt-pipeline is the supervised continual-release daemon: one
// long-running process driving ingest → windowed sanitisation →
// tree-composed budget charge → atomic publication → query-daemon
// reload, with every window's lifecycle journalled in a crash-safe
// manifest so a SIGKILL at any instant recovers to the exact next step —
// no window lost, none published twice, the budget never double-charged.
//
// One-shot (drain the feed, publish every covered window, exit):
//
//	stpt-pipeline -wal feed.wal -grid 16 -t 96 -window 24 \
//	    -in readings.csv -out releases/ -manifest releases/manifest \
//	    -ledger budget.ledger -eps-node 0.5 -budget 4
//
// Daemon (HTTP ingestion; windows publish as their data completes):
//
//	stpt-pipeline -wal feed.wal -grid 16 -t 96 -window 24 \
//	    -listen :8091 -token s3cret -out releases/ -manifest releases/manifest \
//	    -ledger budget.ledger -eps-node 0.5 -budget 4 \
//	    -reload-url http://localhost:8092/-/reload -reload-token sesame
//
// Budget accounting is the binary-tree continual-release composition:
// n windows cost ε_node·(⌊log₂ n⌋+1), not n·ε_node. When the lifetime
// budget is exhausted the daemon degrades instead of dying: published
// windows keep serving, /readyz answers 503 with budget_exhausted, and
// an authenticated POST /-/budget with a larger ε resumes the stream
// exactly where it stopped. In one-shot mode exhaustion exits with
// status 2 so schedulers can tell "refused by budget" from a crash.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/dp"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/profiling"
	"repro/internal/resilience"
	"repro/internal/scrub"
)

func main() {
	var (
		walPath     = flag.String("wal", "", "write-ahead log path; required (replayed on start)")
		gridSide    = flag.Int("grid", 16, "spatial grid side (Cx = Cy)")
		tLen        = flag.Int("t", 0, "number of time intervals; required")
		window      = flag.Int("window", 0, "time intervals per published window; required")
		outDir      = flag.String("out", "", "output directory for window releases; required")
		manifestF   = flag.String("manifest", "", "window-lifecycle manifest path (default: <out>/manifest)")
		ledgerPath  = flag.String("ledger", "", "privacy-budget ledger file; required")
		datasetF    = flag.String("dataset", "stream", "ledger dataset name the tree composer owns")
		epsNode     = flag.Float64("eps-node", 0, "per-tree-node ε each window is sanitised with; required")
		budget      = flag.Float64("budget", 0, "lifetime ε budget (0 = record only, never refuse)")
		sens        = flag.Float64("sensitivity", 1, "per-cell L1 sensitivity of one reading")
		seed        = flag.Int64("seed", 1, "base seed for deterministic window noise")
		inPath      = flag.String("in", "", "one-shot mode: ingest this CSV ('-' = stdin), publish, exit")
		listen      = flag.String("listen", "", "daemon mode: serve ingestion + supervision on this address")
		token       = flag.String("token", "", "bearer token for mutating HTTP endpoints")
		reloadURL   = flag.String("reload-url", "", "POST this URL after each publication (stpt-serve /-/reload)")
		reloadToken = flag.String("reload-token", "", "bearer token for -reload-url")
		interval    = flag.Duration("interval", time.Second, "daemon poll interval between idle checks")
		batch       = flag.Int("batch", 256, "readings per WAL append+fsync")
		retries     = flag.Int("stage-retries", 3, "attempts per pipeline stage on transient failures")
		maxElapsed  = flag.Duration("stage-max-elapsed", 30*time.Second, "total wall-clock cap across one stage's retries")
		pprofAddr   = flag.String("pprof-addr", "", "listen address for the net/http/pprof debug surface (empty = disabled); keep it on a loopback or otherwise private interface")
		scrubEvery  = flag.Duration("scrub-interval", time.Minute, "period between at-rest integrity scrub passes in daemon mode (0 = scrubbing disabled)")
		scrubRate   = flag.Int64("scrub-rate", 0, "scrub read throttle in bytes/sec (0 = unthrottled)")
	)
	flag.Parse()
	switch {
	case *walPath == "":
		fatalf("missing -wal")
	case *tLen <= 0:
		fatalf("missing -t (number of time intervals)")
	case *window <= 0:
		fatalf("missing -window (intervals per release)")
	case *outDir == "":
		fatalf("missing -out (release directory)")
	case *ledgerPath == "":
		fatalf("missing -ledger (a continual release without a durable budget is not a DP pipeline)")
	case *epsNode <= 0:
		fatalf("missing -eps-node (per-node privacy budget)")
	case *inPath == "" && *listen == "":
		fatalf("nothing to do: give -in for one-shot mode or -listen for the daemon")
	}
	if a, err := profiling.Serve(*pprofAddr); err != nil {
		fatalf("%v", err)
	} else if a != "" {
		fmt.Fprintf(os.Stderr, "stpt-pipeline: pprof surface on http://%s/debug/pprof/\n", a)
	}
	manifestPath := *manifestF
	if manifestPath == "" {
		manifestPath = *outDir + "/manifest"
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	in, err := ingest.New(ingest.Config{Cx: *gridSide, Cy: *gridSide, Ct: *tLen, BatchSize: *batch}, *walPath)
	if err != nil {
		fatalf("%v", err)
	}
	defer in.Close()
	if replayed := in.Stats().Replayed; replayed > 0 {
		fmt.Fprintf(os.Stderr, "stpt-pipeline: replayed %d readings from %s\n", replayed, *walPath)
	}
	led, err := dp.OpenLedger(*ledgerPath)
	if err != nil {
		fatalf("%v", err)
	}
	defer led.Close()
	if err := os.MkdirAll(filepath.Dir(manifestPath), 0o755); err != nil {
		fatalf("%v", err)
	}
	man, err := pipeline.OpenManifest(manifestPath)
	if err != nil {
		fatalf("%v", err)
	}
	defer man.Close()
	if man.Len() > 0 {
		fmt.Fprintf(os.Stderr, "stpt-pipeline: manifest resumes at window %d, state %s\n",
			man.LastWindow(), man.LastState())
	}

	cfg := pipeline.Config{
		Dataset: *datasetF, OutDir: *outDir, Window: *window,
		EpsNode: *epsNode, Budget: *budget, Sensitivity: *sens, Seed: *seed,
		Policy: resilience.Policy{
			MaxAttempts: *retries, BaseDelay: 100 * time.Millisecond,
			MaxDelay: 5 * time.Second, MaxElapsed: *maxElapsed,
		},
	}
	if *reloadURL != "" {
		cfg.Notifier = pipeline.HTTPNotifier(*reloadURL, *reloadToken, nil)
	}
	sup, err := pipeline.New(cfg, in, led, man)
	if err != nil {
		fatalf("%v", err)
	}

	if *listen != "" {
		var sc *scrub.Scrubber
		if *scrubEvery > 0 {
			// The pipeline has no upstream to repair from: a corrupt
			// journal or release latches /readyz "corrupt" until
			// stpt-doctor (or an operator) restores the bytes. The active
			// WAL segment is excluded by PipelineTargets — its torn tail is
			// a legal crash signature, not rot.
			sc, err = scrub.New(scrub.Config{
				Interval:    *scrubEvery,
				BytesPerSec: *scrubRate,
				Targets:     scrub.PipelineTargets(*outDir, manifestPath, *ledgerPath, *walPath),
				Logf: func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, format+"\n", args...)
				},
			})
			if err != nil {
				fatalf("%v", err)
			}
			go sc.Run(ctx)
			fmt.Fprintf(os.Stderr, "stpt-pipeline: scrubbing at-rest artifacts every %s\n", *scrubEvery)
		}
		serveHTTP(ctx, sup, in, sc, *listen, *token, *interval)
		return
	}

	// One-shot: stream the feed in, then publish every covered window.
	var src io.Reader = os.Stdin
	if *inPath != "" && *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		src = f
	}
	accepted, quarantined, err := in.Ingest(ctx, src)
	fmt.Fprintf(os.Stderr, "stpt-pipeline: accepted %d, quarantined %d\n", accepted, quarantined)
	if err != nil {
		fatalf("%v", err)
	}
	if err := sup.RunOnce(ctx); err != nil {
		if errors.Is(err, dp.ErrBudgetExhausted) {
			st := sup.Status()
			fmt.Fprintf(os.Stderr, "stpt-pipeline: budget exhausted after %d windows (spent ε=%g of %g): %v\n",
				st.Published, st.Spent, st.Budget, err)
			os.Exit(2)
		}
		fatalf("%v", err)
	}
	st := sup.Status()
	fmt.Fprintf(os.Stderr, "stpt-pipeline: %d windows published, spent ε=%g\n", st.Published, st.Spent)
}

// serveHTTP runs ingestion and supervision on one listener until the
// context is cancelled, then drains. With a scrubber attached, /readyz
// reports "corrupt" while artifacts are latched damaged and /metrics
// carries the scrub counters.
func serveHTTP(ctx context.Context, sup *pipeline.Supervisor, in *ingest.Ingester, sc *scrub.Scrubber, addr, token string, interval time.Duration) {
	hcfg := pipeline.HandlerConfig{
		Token:  token,
		Ingest: ingest.Handler(in, ingest.HandlerConfig{Token: token}),
	}
	if sc != nil {
		hcfg.Integrity = sc
		hcfg.Metrics = scrubMetricsHandler(sc)
	}
	h := pipeline.Handler(sup, hcfg)
	srv := &http.Server{Addr: addr, Handler: h}
	errc := make(chan error, 2)
	go func() { errc <- srv.ListenAndServe() }()
	go func() { errc <- sup.Run(ctx, interval) }()
	fmt.Fprintf(os.Stderr, "stpt-pipeline: listening on %s\n", addr)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, context.Canceled) && !strings.Contains(err.Error(), "Server closed") {
			fatalf("%v", err)
		}
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fatalf("shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "stpt-pipeline: drained")
}

// scrubMetricsHandler exposes the scrub counters in Prometheus text
// format on the pipeline's /metrics.
func scrubMetricsHandler(sc *scrub.Scrubber) http.Handler {
	reg := metrics.NewRegistry()
	count := func(pick func(p, c, r, q uint64) uint64) func() float64 {
		return func() float64 { return float64(pick(sc.ScrubCounts())) }
	}
	reg.GaugeFunc("stpt_pipeline_scrub_passes_total",
		"Completed integrity-scrub passes over the at-rest artifacts.",
		count(func(p, _, _, _ uint64) uint64 { return p }))
	reg.GaugeFunc("stpt_pipeline_scrub_corrupt_found_total",
		"Artifacts found corrupt by the integrity scrubber.",
		count(func(_, c, _, _ uint64) uint64 { return c }))
	reg.GaugeFunc("stpt_pipeline_scrub_repaired_total",
		"Corrupt artifacts repaired and byte-verified.",
		count(func(_, _, r, _ uint64) uint64 { return r }))
	reg.GaugeFunc("stpt_pipeline_scrub_quarantined_total",
		"Corrupt artifacts quarantined to <path>.corrupt.",
		count(func(_, _, _, q uint64) uint64 { return q }))
	reg.GaugeFunc("stpt_pipeline_scrub_corrupt_artifacts",
		"Artifacts currently latched corrupt (readiness reports 'corrupt' while > 0).",
		func() float64 { return float64(len(sc.CorruptArtifacts())) })
	return reg.Handler()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "stpt-pipeline: "+format+"\n", args...)
	os.Exit(1)
}
