package main

import "testing"

func TestParseModel(t *testing.T) {
	for _, name := range []string{"rnn", "gru", "lstm", "attentive-gru", "transformer", "persistence"} {
		k, err := parseModel(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k.String() != name {
			t.Fatalf("parseModel(%q) = %v", name, k)
		}
	}
	if _, err := parseModel("nope"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}
