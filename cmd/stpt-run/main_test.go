package main

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/dp"
)

func TestParseModel(t *testing.T) {
	for _, name := range []string{"rnn", "gru", "lstm", "attentive-gru", "transformer", "persistence"} {
		k, err := parseModel(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k.String() != name {
			t.Fatalf("parseModel(%q) = %v", name, k)
		}
	}
	if _, err := parseModel("nope"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

// TestChargeLedgerRefusal: the CLI gate charges within budget, persists
// across invocations, and surfaces the typed refusal once the lifetime
// budget is spent — the path main maps to a non-zero exit.
func TestChargeLedgerRefusal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger")
	ctx := context.Background()
	entry := dp.LedgerEntry{Dataset: "ca.csv", Algorithm: "stpt", EpsPattern: 10, EpsSanitize: 20}
	if err := chargeLedger(ctx, path, entry, 60); err != nil {
		t.Fatal(err)
	}
	if err := chargeLedger(ctx, path, entry, 60); err != nil {
		t.Fatal(err)
	}
	err := chargeLedger(ctx, path, entry, 60)
	if !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Fatalf("third charge: %v, want ErrBudgetExhausted", err)
	}
	// A different dataset against the same ledger is unaffected.
	if err := chargeLedger(ctx, path, dp.LedgerEntry{Dataset: "tx.csv", EpsSanitize: 30}, 60); err != nil {
		t.Fatal(err)
	}
}
