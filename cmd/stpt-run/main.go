// Command stpt-run executes STPT (or a baseline) on a CSV dataset and
// writes the sanitised consumption matrix as CSV (one row per cell:
// x,y,t,value). With -eval it also reports per-class query MRE.
//
// Usage:
//
//	stpt-datagen -dataset CA -grid 16 -hours 60 > ca.csv
//	stpt-run -in ca.csv -ttrain 30 -alg stpt -eval
//	stpt-run -in ca.csv -ttrain 30 -alg identity -eps 30 -eval
//
// With -ledger, every release durably charges its ε to a crash-safe
// budget ledger first, and -budget sets the lifetime ε per dataset
// beyond which stpt-run refuses to release (non-zero exit, no output).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dp"
	"repro/internal/grid"
	"repro/internal/parallel"
	"repro/internal/query"
)

func main() {
	var (
		in       = flag.String("in", "", "input CSV (from stpt-datagen); required")
		out      = flag.String("o", "", "output CSV of the sanitised matrix (default stdout)")
		alg      = flag.String("alg", "stpt", "algorithm: stpt|"+strings.Join(baselines.Names(), "|"))
		tTrain   = flag.Int("ttrain", 100, "training prefix length")
		epsP     = flag.Float64("eps-pattern", 10, "STPT pattern budget")
		epsS     = flag.Float64("eps-sanitize", 20, "STPT sanitisation budget")
		eps      = flag.Float64("eps", 30, "total budget for baselines")
		depth    = flag.Int("depth", 5, "STPT quadtree depth")
		ws       = flag.Int("window", 6, "STPT window size")
		k        = flag.Int("k", 8, "STPT quantization levels")
		clip     = flag.Float64("clip", 0, "sensitivity clipping factor (0 = dataset max)")
		model    = flag.String("model", "attentive-gru", "STPT model: rnn|gru|lstm|attentive-gru|transformer|persistence")
		epochs   = flag.Int("epochs", 8, "training epochs")
		seed     = flag.Int64("seed", 1, "random seed")
		evalFlag = flag.Bool("eval", false, "report per-class query MRE against the truth")
		queries  = flag.Int("queries", 300, "queries per class when evaluating")
		timeout  = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
		workers  = flag.Int("workers", 0, "worker pool size for STPT's parallel stages (0 = GOMAXPROCS; 1 = the historical serial path, bit-identical to earlier releases)")
		ledgerP  = flag.String("ledger", "", "privacy-budget ledger file; every release appends its spend and over-budget releases are refused")
		budget   = flag.Float64("budget", 0, "lifetime ε budget per dataset enforced through -ledger (0 = record only, never refuse)")
		dataset  = flag.String("dataset", "", "dataset name charged in the ledger (default: the -in file name)")
	)
	flag.Parse()
	if *in == "" {
		fatalf("missing -in")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	f, err := os.Open(*in)
	if err != nil {
		fatalf("%v", err)
	}
	d, err := datasets.LoadCSV(bufio.NewReader(f), *in, 0, 0)
	f.Close()
	if err != nil {
		fatalf("%v", err)
	}
	if d.T() <= *tTrain {
		fatalf("dataset has %d readings; -ttrain %d leaves no release horizon", d.T(), *tTrain)
	}

	clipFactor := *clip
	if clipFactor <= 0 {
		_, clipFactor = d.GlobalMinMax()
	}

	var release, truth *grid.Matrix
	truth = baselines.Input{Dataset: d, TTrain: *tTrain, CellSensitivity: clipFactor}.Truth()

	if *alg == "stpt" {
		cfg := core.DefaultConfig()
		cfg.EpsPattern = *epsP
		cfg.EpsSanitize = *epsS
		cfg.TTrain = *tTrain
		cfg.Depth = *depth
		cfg.WindowSize = *ws
		cfg.QuantLevels = *k
		cfg.ClipFactor = clipFactor
		cfg.Train.Epochs = *epochs
		cfg.Seed = *seed
		cfg.Workers = parallel.Workers(*workers)
		if cfg.Model, err = parseModel(*model); err != nil {
			fatalf("%v", err)
		}
		res, err := core.RunContext(ctx, d, cfg)
		if err != nil {
			fatalCtx(err, *timeout)
		}
		release = res.Sanitized
		fmt.Fprintf(os.Stderr, "stpt-run: ε_tot=%.3g, %d partitions, pattern MAE %.4f RMSE %.4f\n",
			cfg.EpsTotal(), res.Partitions, res.PatternMAE, res.PatternRMSE)
		if res.Recovery != nil && res.Recovery.Attempts > 1 {
			fmt.Fprintf(os.Stderr, "stpt-run: %s\n", res.Recovery)
		}
		fmt.Fprint(os.Stderr, res.Accountant.Report())
	} else {
		a, err := baselines.Lookup(*alg)
		if err != nil {
			fatalf("%v", err)
		}
		release, err = baselines.ReleaseContext(ctx, a, baselines.Input{Dataset: d, TTrain: *tTrain, CellSensitivity: clipFactor}, *eps, *seed)
		if err != nil {
			fatalCtx(err, *timeout)
		}
		fmt.Fprintf(os.Stderr, "stpt-run: %s released %dx%dx%d matrix at ε=%.3g\n",
			a.Name(), release.Cx, release.Cy, release.Ct, *eps)
	}

	if *evalFlag {
		for _, c := range query.Classes() {
			qs := query.GenerateSeeded(query.ClassSeed(*seed, c), c, truth.Cx, truth.Cy, truth.Ct, *queries)
			fmt.Fprintf(os.Stderr, "stpt-run: %-6s queries MRE %.2f%%\n", c,
				query.EvaluateWorkers(truth, release, qs, 0, parallel.Workers(*workers)))
		}
	}

	// The ledger charge comes strictly before the release leaves the
	// process: a crash between the two over-counts spending, which is the
	// safe direction for a privacy budget.
	if *ledgerP != "" {
		entry := dp.LedgerEntry{Dataset: *dataset, Algorithm: *alg}
		if entry.Dataset == "" {
			entry.Dataset = filepath.Base(*in)
		}
		if *alg == "stpt" {
			entry.EpsPattern, entry.EpsSanitize = *epsP, *epsS
		} else {
			entry.EpsSanitize = *eps // baselines spend their whole ε on sanitisation
		}
		if err := chargeLedger(ctx, *ledgerP, entry, *budget); err != nil {
			if errors.Is(err, dp.ErrBudgetExhausted) {
				fatalf("refusing to release: %v", err)
			}
			fatalf("%v", err)
		}
	}

	if *out != "" {
		// Atomic publication: a crash mid-write must leave the previous
		// release or the complete new one, never a torn file.
		if err := datasets.SaveMatrixCSVFile(ctx, *out, release); err != nil {
			fatalf("%v", err)
		}
	} else if err := datasets.SaveMatrixCSV(release, os.Stdout); err != nil {
		// The shared writer keeps this format and stpt-serve's loader in
		// lockstep; see datasets.LoadMatrixCSV.
		fatalf("%v", err)
	}
}

// chargeLedger opens the ledger, durably records the release's spend,
// and closes it, refusing with dp.ErrBudgetExhausted when the dataset's
// lifetime budget would be exceeded.
func chargeLedger(ctx context.Context, path string, entry dp.LedgerEntry, budget float64) error {
	led, err := dp.OpenLedger(path)
	if err != nil {
		return err
	}
	defer led.Close()
	if err := led.Charge(ctx, entry, budget); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stpt-run: ledger %s: charged ε=%.3g to %q (lifetime ε=%.3g)\n",
		path, entry.Eps(), entry.Dataset, led.Spent(entry.Dataset))
	return nil
}

// fatalCtx reports a run failure, naming the deadline when the cause was
// the -timeout budget rather than the pipeline itself.
func fatalCtx(err error, timeout time.Duration) {
	if errors.Is(err, context.DeadlineExceeded) {
		fatalf("aborted: exceeded -timeout %s", timeout)
	}
	if errors.Is(err, context.Canceled) {
		fatalf("aborted: interrupted")
	}
	fatalf("%v", err)
}

func parseModel(s string) (core.ModelKind, error) {
	for _, k := range []core.ModelKind{core.ModelRNN, core.ModelGRU, core.ModelLSTM,
		core.ModelAttentiveGRU, core.ModelTransformer, core.ModelPersistence} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown model %q", s)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "stpt-run: "+format+"\n", args...)
	os.Exit(1)
}
