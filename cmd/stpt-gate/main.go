// Command stpt-gate is the failover gateway in front of N stpt-serve
// replicas. It health-probes each replica's /readyz, routes queries
// round-robin over the available ones, trips per-replica circuit
// breakers on consecutive failures, retries transient errors on other
// replicas within a bounded budget, optionally hedges slow reads, and
// answers 503 with Retry-After only when every replica is down.
//
// Usage:
//
//	stpt-serve -load ca=ca-release.csv -addr :8081                  # leader
//	stpt-serve -follow http://localhost:8081 -data-dir d2 -addr :8082
//	stpt-gate -replica http://localhost:8081 -replica http://localhost:8082 -addr :8080
//	curl 'localhost:8080/query?d=ca&x0=0&x1=3&y0=0&y1=3&t0=0&t1=9'
//
// Endpoints: /healthz and /readyz (the gateway's own; readyz is 503
// only when no replica is routable), /metrics (Prometheus text), and
// everything else proxied with failover. Responses carry X-STPT-Replica
// (which backend answered), X-STPT-Staleness when a follower answered,
// and X-Request-ID (generated or propagated, and forwarded to the
// replica so one query is one id across the whole tier).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/gate"
)

func main() {
	var replicas []string
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		probeEvery = flag.Duration("probe-interval", 500*time.Millisecond, "replica /readyz probe period")
		probeTo    = flag.Duration("probe-timeout", time.Second, "per-probe timeout")
		attemptTo  = flag.Duration("timeout", 2*time.Second, "per-attempt timeout against one replica")
		budget     = flag.Int("retry-budget", 0, "max attempts per request across replicas (0 = number of replicas, capped at 4)")
		hedge      = flag.Duration("hedge-after", 0, "launch a hedged read on another replica after this delay (0 = disabled)")
		brThresh   = flag.Int("breaker-threshold", 3, "consecutive failures that open a replica's circuit breaker")
		brCool     = flag.Duration("breaker-cooldown", time.Second, "how long an open breaker waits before a half-open probe")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint on all-replicas-down 503s")
	)
	flag.Func("replica", "replica base URL (repeatable)", func(v string) error {
		replicas = append(replicas, v)
		return nil
	})
	flag.Parse()
	if len(replicas) == 0 {
		fatalf("no replicas: pass at least one -replica http://host:port")
	}

	g, err := gate.New(gate.Config{
		Replicas:         replicas,
		ProbeInterval:    *probeEvery,
		ProbeTimeout:     *probeTo,
		AttemptTimeout:   *attemptTo,
		RetryBudget:      *budget,
		HedgeAfter:       *hedge,
		BreakerThreshold: *brThresh,
		BreakerCooldown:  *brCool,
		RetryAfter:       *retryAfter,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fatalf("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = g.ListenAndRun(ctx, *addr, func(a net.Addr) {
		fmt.Fprintf(os.Stderr, "stpt-gate: listening on %s, %d replicas %v\n", a, len(replicas), replicas)
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintln(os.Stderr, "stpt-gate: shut down cleanly")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "stpt-gate: "+format+"\n", args...)
	os.Exit(1)
}
